"""Persistent content-hash result cache for the checker fleet.

A checker's output over a translation unit is a pure function of three
things: the unit's source text, the checker's own implementation, and
the analysis engine under both.  The cache therefore keys every entry
on ``sha256(engine fingerprint + checker fingerprint + protocol-spec
text + the unit's (filename, content-hash) pairs)`` — unchanged files
are skipped entirely on re-runs, and editing a file, bumping a
checker's source, or upgrading the engine invalidates exactly the
affected entries, with no mtime heuristics to go wrong.

Entries store the *serialised* result payload (the same JSON shape the
parallel workers ship back over the queue, :func:`result_to_payload`),
including quarantine records and degradation notes.  Results that are
degraded or quarantined are never stored: they depend on the run's
budget and luck, not just on content, so replaying them would poison
later unbudgeted runs.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..lang.source import Location
from ..metal.runtime import Report, ReportSink
from ..obs.provenance import provenance_from_obj, provenance_to_obj
from .resilience import Quarantine

#: Bump when the payload shape changes; stale-schema entries are misses.
#: v2 added per-report path provenance to result/sink payloads.
#: v3: feasibility pruning changed provenance steps (fact/pruned) and
#: keys fold in the analysis configuration (``config_fp``).
#: v4: tolerant frontend — payloads gained ``suppressed`` reports, and
#: ``config_fp`` carries ``frontend=`` plus this schema version so
#: switching ``--frontend`` can never replay the other mode's entries.
SCHEMA_VERSION = 4


# -- fingerprints ------------------------------------------------------------

def _sha256(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
        h.update(b"\x00")
    return h.hexdigest()


def _module_digest(module) -> str:
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        path = None
    if not path or not os.path.exists(path):
        return f"<no-source:{getattr(module, '__name__', module)!r}>"
    return _sha256(Path(path).read_bytes())


_ENGINE_FILES_FP: Optional[str] = None


def engine_fingerprint() -> str:
    """Hash of every module whose behaviour feeds analysis results.

    Covers the frontend (lexer/parser/sema), CFG construction, the metal
    pattern matcher and state machines, the path-sensitive engine, and
    the built-in FLASH knowledge (headers, machine vocabulary, spec
    parsing).  Combined with ``repro.__version__`` on every call so a
    version bump invalidates even without a source change.
    """
    global _ENGINE_FILES_FP
    if _ENGINE_FILES_FP is None:
        import repro.cfg
        import repro.lang
        import repro.metal
        import repro.mc
        import repro.obs
        import repro.project
        from repro.flash import headers, machine, spec

        # repro.obs is included because provenance trails it builds are
        # part of the cached payloads.
        digests = []
        for package in (repro.lang, repro.cfg, repro.metal, repro.mc,
                        repro.obs):
            root = Path(inspect.getsourcefile(package)).parent
            for path in sorted(root.glob("*.py")):
                digests.append(_sha256(path.read_bytes()))
        for module in (repro.project, headers, machine, spec):
            digests.append(_module_digest(module))
        _ENGINE_FILES_FP = _sha256(*(d.encode() for d in digests))
    import repro
    return _sha256(_ENGINE_FILES_FP.encode(), repro.__version__.encode(),
                   str(SCHEMA_VERSION).encode())


_CHECKER_FP: dict[str, Optional[str]] = {}


def checker_fingerprint(name: str) -> Optional[str]:
    """Hash of one registered checker's implementation, or ``None``.

    ``None`` marks the checker *uncacheable* — its source cannot be
    located (e.g. defined in a ``python -c`` script or a REPL), so there
    is no way to notice when it changes.  The framework (``base.py``)
    and the shared metal listings are folded in: they are part of every
    checker's behaviour.
    """
    if name in _CHECKER_FP:
        return _CHECKER_FP[name]
    from ..checkers import base as checkers_base
    from ..checkers import metal_sources
    from ..checkers.base import _REGISTRY

    cls = _REGISTRY.get(name)
    fp: Optional[str] = None
    if cls is not None:
        try:
            path = inspect.getsourcefile(cls)
        except (OSError, TypeError):
            # No source on disk (python -c, REPL): uncacheable.
            path = None
        if path and os.path.exists(path):
            fp = _sha256(
                name.encode(),
                Path(path).read_bytes(),
                _module_digest(checkers_base).encode(),
                _module_digest(metal_sources).encode(),
            )
    _CHECKER_FP[name] = fp
    return fp


def metal_fingerprint(text: str) -> str:
    """Fingerprint for a textual metal checker: its program text."""
    return _sha256(b"metal", text.encode("utf-8"))


def clear_fingerprint_memo() -> None:
    """Tests: recompute fingerprints after monkeypatching sources."""
    global _ENGINE_FILES_FP
    _ENGINE_FILES_FP = None
    _CHECKER_FP.clear()


# -- payload (de)serialisation ----------------------------------------------

def _location_to_obj(loc: Location) -> list:
    return [loc.filename, loc.line, loc.column]


def _location_from_obj(obj) -> Location:
    return Location(obj[0], int(obj[1]), int(obj[2]))


def report_to_obj(report: Report) -> dict:
    return {
        "checker": report.checker,
        "message": report.message,
        "location": _location_to_obj(report.location),
        "function": report.function,
        "severity": report.severity,
        "backtrace": list(report.backtrace),
    }


def report_from_obj(obj: dict) -> Report:
    return Report(
        checker=obj["checker"],
        message=obj["message"],
        location=_location_from_obj(obj["location"]),
        function=obj.get("function", ""),
        severity=obj.get("severity", "error"),
        backtrace=tuple(obj.get("backtrace", ())),
    )


def quarantine_to_obj(q: Quarantine) -> dict:
    return {
        "checker": q.checker, "function": q.function, "phase": q.phase,
        "error_type": q.error_type, "message": q.message,
    }


def quarantine_from_obj(obj: dict) -> Quarantine:
    return Quarantine(
        checker=obj["checker"], function=obj["function"], phase=obj["phase"],
        error_type=obj["error_type"], message=obj["message"],
    )


def result_to_payload(result) -> dict:
    """Serialise a :class:`repro.checkers.base.CheckerResult` to JSON-able data."""
    return {
        "schema": SCHEMA_VERSION,
        "checker": result.checker,
        "reports": [report_to_obj(r) for r in result.reports],
        "applied": result.applied,
        "annotations": [_location_to_obj(l) for l in result.annotations],
        "extra": dict(result.extra),
        "quarantines": [quarantine_to_obj(q) for q in result.quarantines],
        "degraded": bool(result.degraded),
        "degradation_notes": list(result.degradation_notes),
        "provenance": provenance_to_obj(result.provenance),
        "suppressed": [[report_to_obj(r), why]
                       for r, why in getattr(result, "suppressed", [])],
    }


def result_from_payload(payload: dict):
    from ..checkers.base import CheckerResult

    result = CheckerResult(checker=payload["checker"])
    result.reports = [report_from_obj(o) for o in payload["reports"]]
    result.applied = payload["applied"]
    result.annotations = [_location_from_obj(o) for o in payload["annotations"]]
    result.extra = dict(payload["extra"])
    result.quarantines = [quarantine_from_obj(o) for o in payload["quarantines"]]
    result.degraded = payload["degraded"]
    result.degradation_notes = list(payload["degradation_notes"])
    result.provenance = provenance_from_obj(payload.get("provenance", []))
    result.suppressed = [(report_from_obj(o), why)
                         for o, why in payload.get("suppressed", [])]
    return result


def sink_to_payload(sink: ReportSink) -> dict:
    """Serialise a metal run's :class:`ReportSink` (quarantines and
    degradation notes survive the worker round-trip)."""
    return {
        "schema": SCHEMA_VERSION,
        "reports": [report_to_obj(r) for r in sink.reports],
        "quarantines": [quarantine_to_obj(q) for q in sink.quarantines],
        "degraded": bool(sink.degraded),
        "degradation_notes": list(sink.degradation_notes),
        "provenance": provenance_to_obj(sink.provenance),
        "suppressed": [[report_to_obj(r), why]
                       for r, why in getattr(sink, "suppressed", [])],
    }


def sink_from_payload(payload: dict) -> ReportSink:
    sink = ReportSink()
    for obj in payload["reports"]:
        sink.add(report_from_obj(obj))
    for obj in payload["quarantines"]:
        sink.add_quarantine(quarantine_from_obj(obj))
    # add_quarantine sets degraded; restore the recorded flag exactly.
    sink.degraded = payload["degraded"]
    sink.degradation_notes = list(payload["degradation_notes"])
    prov = provenance_from_obj(payload.get("provenance", []))
    for obj, why in payload.get("suppressed", []):
        report = report_from_obj(obj)
        key = (report.checker, report.message, report.location)
        sink._suppressed_seen.add(key)
        sink.suppressed.append((report, why))
    sink.provenance = prov
    return sink


def payload_cacheable(payload: dict) -> bool:
    """Only complete results are content-pure; partial ones depend on
    the run's budget/crash luck and must not be replayed."""
    return not payload.get("degraded") and not payload.get("quarantines")


def work_item_key(*, checker_fp: str, units: list[tuple[str, str]],
                  spec_fp: str = "", engine_fp: Optional[str] = None,
                  config_fp: str = "") -> str:
    """Content-hash key for one (checker, unit-set) work item.

    ``units`` is a list of ``(filename, content-hash)`` pairs; global
    checkers pass every file of the run, unit-parallel checkers pass
    exactly one.  The run journal keys its records the same way, so a
    journal entry — like a cache entry — is automatically invalidated
    by editing a file, changing a checker, or upgrading the engine.
    ``config_fp`` folds in analysis configuration that changes results
    (``feasibility=on|off``, ``frontend=strict|tolerant``, and the
    payload ``SCHEMA_VERSION``), so runs with different settings — in
    particular a ``--frontend`` switch — never share entries.
    """
    engine = engine_fp if engine_fp is not None else engine_fingerprint()
    chunks = [engine.encode(), checker_fp.encode(), spec_fp.encode(),
              config_fp.encode()]
    for filename, digest in units:
        chunks.append(filename.encode())
        chunks.append(digest.encode())
    return _sha256(*chunks)


# -- the on-disk store -------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting for one run, shown in the CLI summary line."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed on disk but would not parse (truncated by a
    #: crash or power loss mid-write on a non-atomic filesystem, bit
    #: rot, manual tampering).  Each one is also a miss — the item is
    #: recomputed — and the bad file is deleted so it cannot keep
    #: tripping every future run.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def line(self) -> str:
        line = f"cache: {self.hits} hit(s), {self.misses} miss(es)"
        if self.corrupt:
            line += f", {self.corrupt} corrupt"
        return line


def default_cache_dir() -> Path:
    """``$MC_CHECK_CACHE_DIR``, else ``~/.cache/mc-check``."""
    env = os.environ.get("MC_CHECK_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "mc-check"


class ResultCache:
    """Content-addressed store of serialised work-item results.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fanout keeps
    directories small at fleet scale.  Writes are atomic (temp file +
    rename) so concurrent runs sharing a cache directory can only ever
    observe whole entries.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.stats = CacheStats()

    def key_for(self, *, checker_fp: str, units: list[tuple[str, str]],
                spec_fp: str = "", engine_fp: Optional[str] = None,
                config_fp: str = "") -> str:
        """Cache key for one (checker, unit-set) work item
        (see :func:`work_item_key`)."""
        return work_item_key(checker_fp=checker_fp, units=units,
                             spec_fp=spec_fp, engine_fp=engine_fp,
                             config_fp=config_fp)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
        except ValueError:
            # The entry exists but won't parse — a half-written file from
            # a crash on a non-atomic filesystem, or plain corruption.
            # Treat it as a miss, and delete it so it cannot keep biting.
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        if not payload_cacheable(payload):
            return
        if "obs" in payload:
            # Timings and counters are run observations, not content —
            # storing them would make cache entries non-reproducible.
            payload = {k: v for k, v in payload.items() if k != "obs"}
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a read-only or full cache never fails the run
        self.stats.stores += 1
