"""Path-feasibility analysis: correlated-branch pruning for the engine.

The paper attributes a large share of its false positives to paths that
no execution can take — most famously the Table 2 buffer-race shape,
where ``WAIT_FOR_DB_FULL`` and ``MISCBUS_READ_DB`` are guarded by the
*same* header field, so the path that skips the wait but performs the
read is syntactic fiction.  The engine in :mod:`repro.mc.engine`
historically walked every syntactic CFG path; this module gives it a
small per-path abstract store so contradictory branch combinations are
pruned instead of reported.

The store tracks two kinds of fact along each path:

``conds``
    the established truth of *call-free* branch conditions, keyed by
    their canonical source text (``has_data``, ``v & 8``, ...).  Taking
    the ``false`` edge of ``if (has_data)`` records ``has_data -> False``;
    a later ``true`` edge of the same condition contradicts it and the
    edge is pruned.  Conditions containing calls are never recorded —
    two calls to the same routine may answer differently.

``vals``
    a small abstract value per trackable *term* (a local, a member
    chain, or a ``HANDLER_GLOBALS(...)`` read): integer bounds, an
    equality/exclusion set over integer and symbolic constants, and a
    zero/nonzero bit.  This catches cross-text contradictions such as
    ``x = 5; if (x != 5)`` or ``if (x == LEN_NODATA) ... else if (x ==
    LEN_NODATA)``.

Everything else is conservative ``top``: an assignment kills the facts
that mention its target, any call kills the facts that read global
state, and locals whose address is taken are never tracked at all.
Pruning is therefore *sound for false paths only* — a fact is recorded
only when the branch genuinely established it, so a pruned edge is one
no execution of the function could take.

To keep the engine's ``(block, state, store)`` memoization from
exploding on long chains of independent branches, stores are restricted
at every edge to the facts that can still influence a *downstream*
condition (:meth:`FunctionFeasibility.restrict`): once the last read of
``has_data`` is behind the path, the fact about it is dropped and paths
that differ only in dead facts re-merge in the visited set.

The module also hosts the process-wide enable default (set from
``--feasibility on|off`` through :class:`repro.mc.parallel.WorkerConfig`)
and :func:`call_branch_transfer`, the general mechanism behind §6's
frees-if-true refinement in :mod:`repro.checkers.buffer_mgmt`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..lang import ast
from ..lang.unparse import unparse_expr
from .summary import event_index

#: The one callee whose "call" is really a read of handler-global state
#: (a field access behind a macro), and therefore a trackable term.
HANDLER_GLOBALS = "HANDLER_GLOBALS"

#: Dependency sentinel for facts that read global/heap state: any call
#: or store through a pointer kills them.
GLOBAL_DEP = "<globals>"

#: Identifiers matching the C constant convention (``LEN_NODATA``,
#: ``F_DATA``) are treated as symbolic constants, not variables.
_CONST_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_NEGATED_CMP = {"==": "!=", "!=": "==", "<": ">=", "<=": ">",
                ">": "<=", ">=": "<"}


# -- process-wide enable default ---------------------------------------------

_DEFAULT_ENABLED = True


def default_enabled() -> bool:
    """The process-wide feasibility default (``--feasibility``)."""
    return _DEFAULT_ENABLED


def set_default_enabled(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value.

    Worker processes call this from ``parallel._init_worker`` so the
    flag reaches every execution mode (inline, pooled, supervised).
    """
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)
    return previous


# -- the abstract value domain ------------------------------------------------

@dataclass(frozen=True)
class AbsVal:
    """What one path knows about one term.  All-None is ``top``."""

    lo: Optional[int] = None
    hi: Optional[int] = None
    #: Equal to this symbolic constant (``LEN_NODATA``), when known.
    eq_sym: Optional[str] = None
    #: Excluded constants: ints and symbolic-constant names.
    not_in: tuple = ()

    def is_top(self) -> bool:
        return (self.lo is None and self.hi is None
                and self.eq_sym is None and not self.not_in)

    def describe(self, term: str) -> str:
        if self.lo is not None and self.lo == self.hi:
            return f"{term} == {self.lo}"
        if self.eq_sym is not None:
            return f"{term} == {self.eq_sym}"
        parts = []
        if self.lo is not None:
            parts.append(f"{term} >= {self.lo}")
        if self.hi is not None:
            parts.append(f"{term} <= {self.hi}")
        for excluded in self.not_in:
            parts.append(f"{term} != {excluded}")
        return " and ".join(parts) if parts else f"{term} is unknown"


_TOP = AbsVal()


def _exclude(val: AbsVal, const) -> AbsVal:
    if const in val.not_in:
        return val
    return replace(val, not_in=tuple(sorted(
        set(val.not_in) | {const}, key=lambda c: (isinstance(c, str), str(c)))))


def _assume_cmp(val: AbsVal, op: str, const) -> Optional[AbsVal]:
    """Refine ``val`` by ``term <op> const``; None means contradiction."""
    symbolic = isinstance(const, str)
    if symbolic:
        if op == "==":
            if const in val.not_in:
                return None
            if val.eq_sym is None:
                return replace(val, eq_sym=const)
            # Two different symbolic constants *could* alias; stay top-ish.
            return val
        if op == "!=":
            if val.eq_sym == const:
                return None
            return _exclude(val, const)
        return val  # relational over symbols: unknown
    c = const
    if op == "==":
        if c in val.not_in:
            return None
        if val.lo is not None and c < val.lo:
            return None
        if val.hi is not None and c > val.hi:
            return None
        return replace(val, lo=c, hi=c)
    if op == "!=":
        if val.lo is not None and val.lo == val.hi == c:
            return None
        return _exclude(val, c)
    if op == "<":
        return _assume_cmp(val, "<=", c - 1)
    if op == ">":
        return _assume_cmp(val, ">=", c + 1)
    if op == "<=":
        if val.lo is not None and val.lo > c:
            return None
        new_hi = c if val.hi is None else min(val.hi, c)
        return _check_range(replace(val, hi=new_hi))
    if op == ">=":
        if val.hi is not None and val.hi < c:
            return None
        new_lo = c if val.lo is None else max(val.lo, c)
        return _check_range(replace(val, lo=new_lo))
    return val


def _check_range(val: AbsVal) -> Optional[AbsVal]:
    if val.lo is not None and val.hi is not None and val.lo > val.hi:
        return None
    if (val.lo is not None and val.lo == val.hi
            and val.lo in val.not_in):
        return None
    return val


def _eval_cmp(val: AbsVal, op: str, const) -> Optional[bool]:
    """Decide ``term <op> const`` from ``val`` alone, if possible."""
    symbolic = isinstance(const, str)
    if symbolic:
        if op == "==":
            if val.eq_sym == const:
                return True
            if const in val.not_in:
                return False
            return None
        if op == "!=":
            answer = _eval_cmp(val, "==", const)
            return None if answer is None else not answer
        return None
    c = const
    exact = val.lo if (val.lo is not None and val.lo == val.hi) else None
    if op == "==":
        if exact is not None:
            return exact == c
        if c in val.not_in:
            return False
        if val.lo is not None and c < val.lo:
            return False
        if val.hi is not None and c > val.hi:
            return False
        return None
    if op == "!=":
        answer = _eval_cmp(val, "==", c)
        return None if answer is None else not answer
    if op == "<":
        if val.hi is not None and val.hi < c:
            return True
        if val.lo is not None and val.lo >= c:
            return False
        return None
    if op == "<=":
        return _eval_cmp(val, "<", c + 1)
    if op == ">":
        answer = _eval_cmp(val, "<=", c)
        return None if answer is None else not answer
    if op == ">=":
        answer = _eval_cmp(val, "<", c)
        return None if answer is None else not answer
    return None


# -- the per-path store --------------------------------------------------------

class Store:
    """An immutable-by-convention map of path facts, hashable via :meth:`key`.

    ``conds`` maps canonical condition text to its established truth;
    ``vals`` maps term text to an :class:`AbsVal`.  Updates go through
    :meth:`updated`, which copies; the engine hashes stores into its
    visited set, so mutating one in place would corrupt memoization.
    """

    __slots__ = ("conds", "vals", "_key")

    def __init__(self, conds: Optional[dict] = None,
                 vals: Optional[dict] = None):
        self.conds: dict[str, bool] = conds if conds is not None else {}
        self.vals: dict[str, AbsVal] = vals if vals is not None else {}
        self._key = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                tuple(sorted(self.conds.items())),
                tuple(sorted(self.vals.items(), key=lambda kv: kv[0])),
            )
        return self._key

    def updated(self, conds: Optional[dict] = None,
                vals: Optional[dict] = None) -> "Store":
        return Store(conds if conds is not None else dict(self.conds),
                     vals if vals is not None else dict(self.vals))

    def is_empty(self) -> bool:
        return not self.conds and not self.vals

    def notes(self) -> list[str]:
        """Human-readable facts, sorted — what `explain` and checkers see."""
        notes = [f"{text} is {'true' if truth else 'false'}"
                 for text, truth in self.conds.items()]
        notes.extend(val.describe(term) for term, val in self.vals.items()
                     if not val.is_top())
        return sorted(notes)

    def __repr__(self) -> str:
        return f"<Store {self.notes()!r}>"


EMPTY_STORE = Store()


class Contradiction:
    """An edge whose condition contradicts facts already on the path."""

    __slots__ = ("reason",)

    def __init__(self, reason: str):
        self.reason = reason

    def __repr__(self) -> str:
        return f"<Contradiction {self.reason!r}>"


# -- condition structure -------------------------------------------------------

def peel_negations(cond: ast.Node) -> tuple[ast.Node, bool]:
    """Strip leading ``!`` operators; returns (core, negated)."""
    negated = False
    node = cond
    while isinstance(node, ast.UnaryOp) and node.op == "!":
        negated = not negated
        node = node.operand
    return node, negated


def direct_call(cond: ast.Node) -> tuple[Optional[str], bool]:
    """If ``cond`` is ``fn(...)`` or ``!fn(...)``, return (fn, negated)."""
    node, negated = peel_negations(cond)
    if isinstance(node, ast.Call) and node.callee_name is not None:
        return node.callee_name, negated
    return None, False


def call_branch_transfer(transfers: dict) -> "ast.Node":
    """Build a :attr:`StateMachine.branch_fn` from a transfer table.

    ``transfers`` maps callee name to ``{state: (state_if_call_true,
    state_if_call_false)}``.  The returned hook fires when a branch
    condition is a direct (possibly negated) call to a listed routine
    and the machine is in a listed state — the general form of the §6
    frees-if-true refinement, usable by any checker whose protocol
    tables say "this routine's return value reports what it did".
    """
    def branch(state: str, cond: ast.Node, label: Optional[str]):
        callee, negated = direct_call(cond)
        if callee is None:
            return None
        by_state = transfers.get(callee)
        if by_state is None:
            return None
        pair = by_state.get(state)
        if pair is None:
            return None
        taken = (label == "true") != negated
        return pair[0] if taken else pair[1]
    return branch


# -- per-function analysis ------------------------------------------------------

class FunctionFeasibility:
    """Derived, run-independent feasibility info for one CFG.

    Holds the declared-locals and address-taken sets, per-node caches of
    canonical text / purity / dependency sets, and the per-block
    relevance fixpoint used to garbage-collect dead facts.  One instance
    is shared by every machine run over the same CFG
    (:func:`for_cfg`); all per-path state lives in :class:`Store`.
    """

    def __init__(self, cfg):
        self.cfg = cfg
        function = cfg.function
        self.locals: set[str] = set()
        self.addr_taken: set[str] = set()
        # The flat per-event node tuples, shared with the slicing layer
        # (every statement node appears in some block event, so scanning
        # them covers the function body without another AST walk).
        self._event_nodes = event_index(cfg)
        if function is not None:
            self.locals = {p.name for p in function.params}
            for entry in self._event_nodes.values():
                for node in entry[0]:
                    if isinstance(node, ast.VarDecl):
                        self.locals.add(node.name)
                    elif (isinstance(node, ast.UnaryOp) and node.op == "&"
                            and isinstance(node.operand, ast.Ident)):
                        self.addr_taken.add(node.operand.name)
        self._text_cache: dict[int, str] = {}
        self._pure_cache: dict[int, bool] = {}
        self._deps_cache: dict[int, frozenset] = {}
        self._transfer_cache: dict[int, tuple[frozenset, tuple]] = {}
        # (node/block id, store key) memos: every store operation is
        # pure, and the engine revisits the same (condition, store)
        # pairs once per machine state, so these turn the steady-state
        # cost of feasibility into dict lookups.
        self._transfer_memo: dict[tuple, Store] = {}
        self._assume_memo: dict[tuple, object] = {}
        self._restrict_memo: dict[tuple, Store] = {}
        self._fact_deps: dict[str, frozenset] = {}
        self._relevant = self._relevance_fixpoint()

    # -- expression classification ------------------------------------------

    def _text(self, expr: ast.Expr) -> str:
        text = self._text_cache.get(id(expr))
        if text is None:
            text = unparse_expr(expr)
            self._text_cache[id(expr)] = text
        return text

    def _pure(self, expr: ast.Node) -> bool:
        """Call-free (modulo HANDLER_GLOBALS) and side-effect-free,
        reading no address-taken locals: safe to memoize as a repeatable
        truth."""
        cached = self._pure_cache.get(id(expr))
        if cached is not None:
            return cached
        pure = True
        for node in expr.walk():
            if isinstance(node, (ast.OpaqueExpr, ast.OpaqueStmt)):
                # Tolerant-frontend opaque region: may do anything.
                pure = False
                break
            if isinstance(node, ast.Call):
                if node.callee_name != HANDLER_GLOBALS:
                    pure = False
                    break
            elif isinstance(node, (ast.Assign, ast.PostfixOp)):
                pure = False
                break
            elif isinstance(node, ast.UnaryOp) and node.op in ("++", "--"):
                pure = False
                break
            elif (isinstance(node, ast.Ident)
                    and node.name in self.addr_taken):
                pure = False
                break
        self._pure_cache[id(expr)] = pure
        return pure

    def _deps(self, expr: ast.Node) -> frozenset:
        """The kill-set names this expression's value depends on."""
        cached = self._deps_cache.get(id(expr))
        if cached is not None:
            return cached
        deps: set[str] = set()
        for node in expr.walk():
            if isinstance(node, ast.Ident):
                deps.add(node.name)
                # A non-local, non-constant identifier names a global:
                # its value can change under any call or pointer store.
                if (node.name not in self.locals
                        and not _CONST_RE.match(node.name)):
                    deps.add(GLOBAL_DEP)
            elif isinstance(node, ast.Call):
                deps.add(GLOBAL_DEP)
            elif isinstance(node, ast.Member) and node.arrow:
                deps.add(GLOBAL_DEP)
            elif isinstance(node, ast.Index):
                deps.add(GLOBAL_DEP)
            elif isinstance(node, ast.UnaryOp) and node.op == "*":
                deps.add(GLOBAL_DEP)
            elif isinstance(node, (ast.OpaqueExpr, ast.OpaqueStmt)):
                deps.add(GLOBAL_DEP)
        frozen = frozenset(deps)
        self._deps_cache[id(expr)] = frozen
        return frozen

    def _term_text(self, expr: ast.Expr) -> Optional[str]:
        """Canonical text of a trackable term, else None.

        Trackable: a non-address-taken, non-constant identifier; a
        member chain over one; or a ``HANDLER_GLOBALS(...)`` read.
        """
        if isinstance(expr, ast.Ident):
            name = expr.name
            if name in self.addr_taken:
                return None
            if _CONST_RE.match(name) and name not in self.locals:
                return None  # that's a constant, not a variable
            return name
        if isinstance(expr, ast.Member):
            base = expr.base
            while isinstance(base, ast.Member):
                base = base.base
            if (isinstance(base, ast.Ident)
                    and base.name not in self.addr_taken):
                return self._text(expr)
            return None
        if (isinstance(expr, ast.Call)
                and expr.callee_name == HANDLER_GLOBALS
                and all(self._pure(a) for a in expr.args)):
            return self._text(expr)
        return None

    def _const_of(self, expr: ast.Expr):
        """An integer or symbolic-constant operand, else None."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and expr.op == "-" \
                and isinstance(expr.operand, ast.IntLit):
            return -expr.operand.value
        if (isinstance(expr, ast.Ident) and _CONST_RE.match(expr.name)
                and expr.name not in self.locals):
            return expr.name
        return None

    def _atom(self, cond: ast.Node):
        """Decompose a (peeled) condition into a trackable atom.

        Returns ``("cmp", term, op, const)`` for ``term <op> const``
        comparisons (flipped as needed), ``("truth", term)`` when the
        condition is a bare trackable term, or None.
        """
        if isinstance(cond, ast.BinaryOp) and cond.op in _CMP_OPS:
            left_term = self._term_text(cond.left)
            right_const = self._const_of(cond.right)
            if left_term is not None and right_const is not None:
                return ("cmp", left_term, cond.op, right_const, cond.left)
            right_term = self._term_text(cond.right)
            left_const = self._const_of(cond.left)
            if right_term is not None and left_const is not None:
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                op = flipped.get(cond.op, cond.op)
                return ("cmp", right_term, op, left_const, cond.right)
            return None
        term = self._term_text(cond)
        if term is not None:
            return ("truth", term, cond)
        return None

    def _record_fact_deps(self, fact_key: str, expr: ast.Node) -> None:
        if fact_key not in self._fact_deps:
            self._fact_deps[fact_key] = self._deps(expr)

    # -- relevance (store GC) ------------------------------------------------

    def _block_cond(self, block):
        if not block.events:
            return None
        if any(e.label in ("true", "false") for e in block.out_edges):
            return block.events[-1]
        return None

    def _relevance_fixpoint(self) -> dict[int, frozenset]:
        """``relevant[b]``: kill-set names read by any branch condition
        in ``b`` or any block reachable from it.  A fact none of whose
        dependencies appear here can never influence a future pruning
        decision, so :meth:`restrict` drops it — which is what keeps the
        ``(block, state, store)`` visited set from exploding on chains
        of unrelated branches."""
        own: dict[int, frozenset] = {}
        for block in self.cfg.blocks:
            cond = self._block_cond(block)
            own[block.index] = self._deps(cond) if cond is not None \
                else frozenset()
        relevant = dict(own)
        changed = True
        while changed:
            changed = False
            for block in reversed(self.cfg.blocks):
                merged = set(own[block.index])
                for edge in block.out_edges:
                    merged |= relevant[edge.dst.index]
                frozen = frozenset(merged)
                if frozen != relevant[block.index]:
                    relevant[block.index] = frozen
                    changed = True
        return relevant

    def restrict(self, store: Store, block) -> Store:
        """Drop facts irrelevant to every condition reachable from ``block``."""
        if store.is_empty():
            return store
        memo_key = (block.index, store.key())
        cached = self._restrict_memo.get(memo_key)
        if cached is not None:
            return cached
        rel = self._relevant[block.index]
        conds = {t: v for t, v in store.conds.items()
                 if self._fact_deps.get(t, frozenset()) & rel}
        vals = {t: v for t, v in store.vals.items()
                if self._fact_deps.get(t, frozenset()) & rel}
        if len(conds) == len(store.conds) and len(vals) == len(store.vals):
            result = store
        else:
            result = Store(conds, vals)
        self._restrict_memo[memo_key] = result
        return result

    # -- store transfer ------------------------------------------------------

    def initial_store(self) -> Store:
        return EMPTY_STORE

    def _transfer_ops(self, event: ast.Node) -> tuple[frozenset, tuple, bool]:
        """The (kill set, generated facts, havoc flag) of one event, memoized.

        Events are shared AST statement nodes, so the walk runs once per
        distinct statement instead of once per visited engine state —
        this is what keeps the no-prune overhead of feasibility small.

        ``havoc`` is True when the event contains an opaque node from
        the tolerant frontend: the skipped region may read or write
        anything, so every tracked fact dies across it.
        """
        eid = id(event)
        cached = self._transfer_cache.get(eid)
        if cached is not None:
            return cached
        kills: set[str] = set()
        gen: list[tuple[str, AbsVal]] = []
        havoc = False
        entry = self._event_nodes.get(eid)
        nodes = entry[0] if entry is not None else tuple(event.walk())
        for node in nodes:
            if isinstance(node, (ast.OpaqueStmt, ast.OpaqueExpr)):
                havoc = True
            elif isinstance(node, ast.Assign):
                self._kill_lvalue(node.target, kills)
                if node is event and node.op == "=":
                    self._gen_assign(node.target, node.value, gen)
            elif isinstance(node, ast.PostfixOp):
                self._kill_lvalue(node.operand, kills)
            elif isinstance(node, ast.UnaryOp) and node.op in ("++", "--"):
                self._kill_lvalue(node.operand, kills)
            elif isinstance(node, ast.Call):
                if node.callee_name != HANDLER_GLOBALS:
                    kills.add(GLOBAL_DEP)
            elif isinstance(node, ast.VarDecl):
                kills.add(node.name)
                if node.init is not None:
                    self._gen_assign(
                        ast.Ident(location=node.location, name=node.name),
                        node.init, gen)
        cached = (frozenset(kills), tuple(gen), havoc)
        self._transfer_cache[eid] = cached
        return cached

    def transfer_event(self, store: Store, event: ast.Node) -> Store:
        """Update ``store`` across one block event (statement)."""
        kills, gen, havoc = self._transfer_ops(event)
        if havoc:
            return EMPTY_STORE
        if not kills and not gen:
            return store
        if store.is_empty() and not gen:
            return store
        memo_key = (id(event), store.key())
        cached = self._transfer_memo.get(memo_key)
        if cached is not None:
            return cached
        conds = {t: v for t, v in store.conds.items()
                 if not self._fact_deps.get(t, frozenset()) & kills}
        vals = {t: v for t, v in store.vals.items()
                if not self._fact_deps.get(t, frozenset()) & kills}
        for term, val in gen:
            vals[term] = val
        if not conds and not vals:
            result = EMPTY_STORE
        else:
            result = Store(conds, vals)
        self._transfer_memo[memo_key] = result
        return result

    def _kill_lvalue(self, target: ast.Expr, kills: set) -> None:
        if isinstance(target, ast.Ident):
            kills.add(target.name)
            return
        if isinstance(target, ast.Member):
            base = target.base
            while isinstance(base, ast.Member):
                base = base.base
            if isinstance(base, ast.Ident):
                kills.add(base.name)
            kills.add(GLOBAL_DEP)
            return
        # Stores through pointers/indices may alias anything global.
        for node in target.walk():
            if isinstance(node, ast.Ident):
                kills.add(node.name)
        kills.add(GLOBAL_DEP)

    def _gen_assign(self, target: ast.Expr, value: ast.Expr, gen: list) -> None:
        term = self._term_text(target)
        if term is None:
            return
        const = self._const_of(value)
        if const is None:
            return
        if isinstance(const, str):
            val = AbsVal(eq_sym=const)
        else:
            val = AbsVal(lo=const, hi=const)
        self._record_fact_deps(term, target)
        gen.append((term, val))

    # -- evaluation and assumption ------------------------------------------

    def evaluate(self, store: Store, cond: ast.Node) -> Optional[bool]:
        """Truth of ``cond`` under ``store``, or None when unknown."""
        cond, negated = peel_negations(cond)
        answer = self._evaluate_core(store, cond)
        if answer is None:
            return None
        return (not answer) if negated else answer

    def _evaluate_core(self, store: Store, cond: ast.Node) -> Optional[bool]:
        if isinstance(cond, ast.BinaryOp) and cond.op in ("&&", "||"):
            left = self.evaluate(store, cond.left)
            right = self.evaluate(store, cond.right)
            if cond.op == "&&":
                if left is False or right is False:
                    return False
                if left is True and right is True:
                    return True
                return None
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if self._pure(cond):
            known = store.conds.get(self._text(cond))
            if known is not None:
                return known
        atom = self._atom(cond)
        if atom is None:
            return None
        if atom[0] == "cmp":
            _, term, op, const, _node = atom
            val = store.vals.get(term)
            if val is not None:
                return _eval_cmp(val, op, const)
            return None
        _, term, _node = atom
        val = store.vals.get(term)
        if val is not None:
            return _eval_cmp(val, "!=", 0)
        return None

    def assume_edge(self, store: Store, cond: ast.Node,
                    label: str) -> Union[tuple[Store, Optional[str]],
                                         Contradiction]:
        """Assume the branch took ``label``; prune on contradiction.

        Returns ``(refined store, fact note)`` — the note (for
        provenance) is set when prior path facts already *verified* the
        branch — or a :class:`Contradiction` naming the clashing fact.
        """
        memo_key = (id(cond), label, store.key())
        cached = self._assume_memo.get(memo_key)
        if cached is None:
            cached = self._assume(store, cond, label == "true")
            self._assume_memo[memo_key] = cached
        return cached

    def _assume(self, store: Store, cond: ast.Node,
                desired: bool) -> Union[tuple[Store, Optional[str]],
                                        Contradiction]:
        cond, negated = peel_negations(cond)
        if negated:
            desired = not desired
        verified: list[str] = []

        # 1. The whole-condition text fact (correlated branches).
        if self._pure(cond):
            text = self._text(cond)
            known = store.conds.get(text)
            if known is not None:
                if known != desired:
                    return Contradiction(
                        f"'{text}' is already "
                        f"{'true' if known else 'false'} on this path")
                verified.append(f"'{text}' already "
                                f"{'true' if known else 'false'}")
            else:
                self._record_fact_deps(text, cond)
                store = store.updated(
                    conds={**store.conds, text: desired})

        # 2. Short-circuit structure (residual: the CFG builder
        #    decomposes top-level &&/||, but conditions reaching us via
        #    other routes may still be compound).
        if isinstance(cond, ast.BinaryOp) and cond.op in ("&&", "||"):
            return self._assume_compound(store, cond, desired, verified)

        # 3. The abstract-value atom (cross-text contradictions).
        atom = self._atom(cond)
        if atom is not None:
            outcome = self._assume_atom(store, atom, desired)
            if isinstance(outcome, Contradiction):
                return outcome
            store, atom_verified = outcome
            if atom_verified:
                verified.append(atom_verified)
        return store, ("; ".join(verified) if verified else None)

    def _assume_compound(self, store: Store, cond: ast.BinaryOp,
                         desired: bool, verified: list):
        conjunctive = (cond.op == "&&") == desired
        if conjunctive:
            # Both sides take the desired truth.
            for side in (cond.left, cond.right):
                outcome = self._assume(store, side, desired)
                if isinstance(outcome, Contradiction):
                    return outcome
                store, note = outcome
                if note:
                    verified.append(note)
            return store, ("; ".join(verified) if verified else None)
        # `a && b` false / `a || b` true: only a one-sided conclusion
        # when the other side's truth is already known.
        left = self.evaluate(store, cond.left)
        right = self.evaluate(store, cond.right)
        if left is not None and right is not None and left == right == (
                not desired if cond.op == "&&" else desired):
            # both sides already contradict the desired outcome?
            pass
        if cond.op == "&&":
            if left is True and right is True:
                return Contradiction(
                    f"both sides of '{self._text(cond)}' hold on this path")
            if left is True:
                return self._chain_assume(store, cond.right, False, verified)
            if right is True:
                return self._chain_assume(store, cond.left, False, verified)
        else:
            if left is False and right is False:
                return Contradiction(
                    f"neither side of '{self._text(cond)}' holds "
                    f"on this path")
            if left is False:
                return self._chain_assume(store, cond.right, True, verified)
            if right is False:
                return self._chain_assume(store, cond.left, True, verified)
        return store, ("; ".join(verified) if verified else None)

    def _chain_assume(self, store: Store, cond: ast.Node, desired: bool,
                      verified: list):
        outcome = self._assume(store, cond, desired)
        if isinstance(outcome, Contradiction):
            return outcome
        store, note = outcome
        if note:
            verified.append(note)
        return store, ("; ".join(verified) if verified else None)

    def _assume_atom(self, store: Store, atom, desired: bool):
        if atom[0] == "cmp":
            _, term, op, const, node = atom
            if not desired:
                op = _NEGATED_CMP[op]
        else:
            _, term, node = atom
            op, const = ("!=", 0) if desired else ("==", 0)
        val = store.vals.get(term, _TOP)
        known = _eval_cmp(val, op, const)
        if known is False:
            return Contradiction(
                f"'{val.describe(term)}' already holds on this path")
        refined = _assume_cmp(val, op, const)
        if refined is None:
            return Contradiction(
                f"'{val.describe(term)}' already holds on this path")
        note = f"'{val.describe(term)}' already holds" if known is True \
            else None
        if refined == val:
            return (store, note)
        self._record_fact_deps(term, node)
        return (store.updated(vals={**store.vals, term: refined}), note)


def for_cfg(cfg) -> FunctionFeasibility:
    """The (cached) :class:`FunctionFeasibility` for one CFG."""
    feas = getattr(cfg, "_feasibility", None)
    if feas is None:
        feas = FunctionFeasibility(cfg)
        cfg._feasibility = feas
    return feas


# -- checker-facing view -------------------------------------------------------

class FactsView:
    """Read-only window onto the current path's facts for checker actions.

    Handed to actions as ``ctx.facts`` when feasibility is on; ``None``
    when it is off, so checkers must treat it as optional.  This is the
    general mechanism that subsumes checker-local value hacks: an action
    can ask whether a condition is already known true/false on the path
    it is being run down.
    """

    __slots__ = ("_feas", "_store")

    def __init__(self, feas: FunctionFeasibility, store: Store):
        self._feas = feas
        self._store = store

    def truth(self, cond: ast.Node) -> Optional[bool]:
        """True/False when the path's facts decide ``cond``, else None."""
        return self._feas.evaluate(self._store, cond)

    def is_true(self, cond: ast.Node) -> bool:
        return self.truth(cond) is True

    def is_false(self, cond: ast.Node) -> bool:
        return self.truth(cond) is False

    def notes(self) -> list[str]:
        """The path's facts as sorted human-readable strings."""
        return self._store.notes()
