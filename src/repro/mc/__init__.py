"""The analysis engine: path-sensitive SM execution and global analysis."""

from .cache import (
    AnalysisMemo,
    CacheStats,
    FunctionSummary,
    FunctionSummaryStore,
    ResultCache,
    checker_fingerprint,
    clear_function_summaries,
    default_cache_dir,
    engine_fingerprint,
    function_fingerprint,
    function_summaries,
    result_from_payload,
    result_to_payload,
    sink_from_payload,
    sink_to_payload,
    work_item_key,
)
from .engine import check_function, check_unit, run_machine, run_machine_naive
from .summary import (
    CfgSlice,
    MachineFilter,
    default_engine,
    set_default_engine,
    slice_for,
)
from .feasibility import (
    Contradiction,
    FactsView,
    FunctionFeasibility,
    call_branch_transfer,
    default_enabled,
    set_default_enabled,
)
from .flowcheck import find_unfollowed, find_unguarded, is_call_to, quarantining
from .interproc import bottom_up, walk_paths
from .parallel import (
    CheckRun,
    MetalRun,
    WorkItem,
    check_files,
    merge_parts,
    metal_files,
    resolve_jobs,
)
from .resilience import Budget, Quarantine
from .supervisor import (
    RunJournal,
    RunStats,
    StopFlag,
    SupervisorPolicy,
    default_runs_dir,
    graceful_shutdown,
    new_run_id,
)
from .ranking import base_score, cascade_factor, confidence_of, score_run
from .transform import RedundantWaitEliminator, TransformResult
from .report import (
    Report,
    ReportSink,
    filter_by_confidence,
    format_quarantines,
    format_reports,
    format_run_stats,
    format_sink,
    report_to_json_obj,
    run_to_json,
    summarize_by_severity,
)

__all__ = [
    "check_function", "check_unit", "run_machine", "run_machine_naive",
    "find_unfollowed", "find_unguarded", "is_call_to", "quarantining",
    "bottom_up", "walk_paths",
    "Budget", "Quarantine",
    "AnalysisMemo", "FunctionSummary", "FunctionSummaryStore",
    "CfgSlice", "MachineFilter", "default_engine", "set_default_engine",
    "slice_for", "clear_function_summaries", "function_fingerprint",
    "function_summaries",
    "CacheStats", "ResultCache", "checker_fingerprint", "default_cache_dir",
    "engine_fingerprint", "result_from_payload", "result_to_payload",
    "sink_from_payload", "sink_to_payload",
    "work_item_key",
    "CheckRun", "MetalRun", "WorkItem", "check_files", "merge_parts",
    "metal_files", "resolve_jobs",
    "RunJournal", "RunStats", "StopFlag", "SupervisorPolicy",
    "default_runs_dir", "graceful_shutdown", "new_run_id",
    "Contradiction", "FactsView", "FunctionFeasibility",
    "call_branch_transfer", "default_enabled", "set_default_enabled",
    "base_score", "cascade_factor", "confidence_of", "score_run",
    "RedundantWaitEliminator", "TransformResult",
    "Report", "ReportSink", "filter_by_confidence", "format_quarantines",
    "format_reports", "format_run_stats", "format_sink",
    "summarize_by_severity", "report_to_json_obj", "run_to_json",
]
