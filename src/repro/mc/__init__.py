"""The analysis engine: path-sensitive SM execution and global analysis."""

from .engine import check_function, check_unit, run_machine, run_machine_naive
from .flowcheck import find_unfollowed, find_unguarded, is_call_to, quarantining
from .interproc import bottom_up, walk_paths
from .resilience import Budget, Quarantine
from .transform import RedundantWaitEliminator, TransformResult
from .report import (
    Report,
    ReportSink,
    format_quarantines,
    format_reports,
    format_sink,
    summarize_by_severity,
)

__all__ = [
    "check_function", "check_unit", "run_machine", "run_machine_naive",
    "find_unfollowed", "find_unguarded", "is_call_to", "quarantining",
    "bottom_up", "walk_paths",
    "Budget", "Quarantine",
    "RedundantWaitEliminator", "TransformResult",
    "Report", "ReportSink", "format_quarantines", "format_reports",
    "format_sink", "summarize_by_severity",
]
