"""Diagnostic formatting for checker output.

Re-exports the core :class:`Report`/:class:`ReportSink` types and adds
the textual presentation used by the CLI and the benchmarks: grouped,
sorted, with inter-procedural backtraces rendered the way the paper's
lane checker printed "precise textual back traces".
"""

from __future__ import annotations

from ..metal.runtime import Report, ReportSink

__all__ = ["Report", "ReportSink", "format_reports", "summarize_by_severity"]


def format_reports(reports, heading: str = "") -> str:
    """Render reports sorted by file, line, then checker."""
    lines: list[str] = []
    if heading:
        lines.append(heading)
        lines.append("-" * len(heading))
    ordered = sorted(
        reports,
        key=lambda r: (r.location.filename, r.location.line, r.checker, r.message),
    )
    for report in ordered:
        lines.append(str(report))
    if not ordered:
        lines.append("(no diagnostics)")
    return "\n".join(lines)


def summarize_by_severity(reports) -> dict[str, int]:
    counts: dict[str, int] = {}
    for report in reports:
        counts[report.severity] = counts.get(report.severity, 0) + 1
    return counts
