"""Diagnostic formatting for checker output.

Re-exports the core :class:`Report`/:class:`ReportSink` types and adds
the textual presentation used by the CLI and the benchmarks: grouped,
sorted, with inter-procedural backtraces rendered the way the paper's
lane checker printed "precise textual back traces".
"""

from __future__ import annotations

from ..metal.runtime import Report, ReportSink
from .resilience import Budget, Quarantine

__all__ = [
    "Report", "ReportSink", "Budget", "Quarantine",
    "format_reports", "format_quarantines", "format_sink",
    "format_run_stats", "summarize_by_severity",
]


def format_reports(reports, heading: str = "") -> str:
    """Render reports sorted by (file, line, column, checker).

    A *total* deterministic order — column and message break line-level
    ties — so parallel runs (``--jobs 4``) print byte-identically to
    serial ones no matter how the work was partitioned.
    """
    lines: list[str] = []
    if heading:
        lines.append(heading)
        lines.append("-" * len(heading))
    ordered = sorted(
        reports,
        key=lambda r: (r.location.filename, r.location.line,
                       r.location.column, r.checker, r.message),
    )
    for report in ordered:
        lines.append(str(report))
    if not ordered:
        lines.append("(no diagnostics)")
    return "\n".join(lines)


def format_quarantines(quarantines) -> str:
    """Render quarantine diagnostics, one line per isolated pair."""
    return "\n".join(str(q) for q in quarantines)


def format_sink(sink: ReportSink, heading: str = "") -> str:
    """Render a sink's full state: reports, quarantines, degradation.

    A degraded run prints everything it *did* find, then says what it
    could not: which (checker, function) pairs were quarantined and
    which explorations a budget cut short.  ``DEGRADED`` in the footer
    is the machine-greppable marker that the result is partial.
    """
    lines = [format_reports(sink.reports, heading=heading)]
    if sink.quarantines:
        lines.append("")
        lines.append(format_quarantines(sink.quarantines))
    if sink.degraded:
        lines.append("")
        lines.append("DEGRADED: results are partial")
        for note in sink.degradation_notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)


def format_run_stats(stats) -> str:
    """Render a run's supervision accounting, compactly.

    Only *noteworthy* fields appear (replays, retries, crashes,
    timeouts, quarantines, interruption), so a clean run's summary line
    is byte-identical to one from before supervision existed — the
    determinism pins in CI keep holding.
    """
    parts: list[str] = []
    if stats.replayed:
        parts.append(f"{stats.replayed} replayed")
    if stats.retried:
        parts.append(f"{stats.retried} retried")
    if stats.crashes:
        parts.append(f"{stats.crashes} crash(es)")
    if stats.timeouts:
        parts.append(f"{stats.timeouts} timeout(s)")
    if stats.quarantined:
        parts.append(f"{stats.quarantined} quarantined")
    if stats.interrupted:
        parts.append("interrupted")
    return ", ".join(parts)


def summarize_by_severity(reports) -> dict[str, int]:
    counts: dict[str, int] = {}
    for report in reports:
        counts[report.severity] = counts.get(report.severity, 0) + 1
    return counts
