"""Diagnostic formatting for checker output.

Re-exports the core :class:`Report`/:class:`ReportSink` types and adds
the textual presentation used by the CLI and the benchmarks: grouped,
sorted, with inter-procedural backtraces rendered the way the paper's
lane checker printed "precise textual back traces".
"""

from __future__ import annotations

from ..metal.runtime import Report, ReportSink
from .resilience import Budget, Quarantine

__all__ = [
    "Report", "ReportSink", "Budget", "Quarantine",
    "format_reports", "format_quarantines", "format_sink",
    "format_run_stats", "summarize_by_severity", "filter_by_confidence",
    "report_to_json_obj", "run_to_json", "REPORT_JSON_SCHEMA",
]

#: ``--format json`` document schema; bump when the shape changes.
#: v2 added per-report ``confidence`` scores and feasibility provenance
#: steps (``fact`` on branches, ``pruned`` siblings).
#: v3 added the ``suppressed`` section: reports withheld because every
#: path reaching them crossed an opaque (unparsed) region, each tagged
#: with its ``suppressed_by`` reason.
#: v4 added per-report ``pack`` provenance (``{"name", "version"}``):
#: every report from a registered checker names the pack that produced
#: it — builtins report the ``builtin`` pseudo-pack at the engine
#: version, checker-pack findings their ``pack.toml`` identity.
REPORT_JSON_SCHEMA = 4


def _stable_key(report: Report) -> tuple:
    return (report.location.filename, report.location.line,
            report.location.column, report.checker, report.message)


def filter_by_confidence(reports, scores, min_confidence):
    """Drop reports scoring below ``min_confidence`` (None = keep all)."""
    if min_confidence is None or not scores:
        return list(reports)
    from ..obs.provenance import report_key
    return [r for r in reports
            if (scores.get(report_key(r)) is None
                or scores[report_key(r)] >= min_confidence)]


def format_reports(reports, heading: str = "", scores=None) -> str:
    """Render reports sorted by (file, line, column, checker).

    A *total* deterministic order — column and message break line-level
    ties — so parallel runs (``--jobs 4``) print byte-identically to
    serial ones no matter how the work was partitioned.  With
    ``scores`` (a :func:`repro.mc.ranking.score_run` map), reports are
    ranked by descending confidence first — the z-ranking presentation
    — with the stable key breaking ties, and each line is annotated
    with its score.
    """
    lines: list[str] = []
    if heading:
        lines.append(heading)
        lines.append("-" * len(heading))
    if scores:
        from ..obs.provenance import report_key

        def key(r):
            confidence = scores.get(report_key(r))
            return (-(confidence if confidence is not None else 0.5),
                    *_stable_key(r))

        ordered = sorted(reports, key=key)
    else:
        ordered = sorted(reports, key=_stable_key)
    for report in ordered:
        text = str(report)
        if scores:
            from ..obs.provenance import report_key
            confidence = scores.get(report_key(report))
            if confidence is not None:
                head, sep, tail = text.partition("\n")
                text = f"{head}  [confidence {confidence:.2f}]{sep}{tail}"
        lines.append(text)
    if not ordered:
        lines.append("(no diagnostics)")
    return "\n".join(lines)


def format_quarantines(quarantines) -> str:
    """Render quarantine diagnostics, one line per isolated pair."""
    return "\n".join(str(q) for q in quarantines)


def format_sink(sink: ReportSink, heading: str = "") -> str:
    """Render a sink's full state: reports, quarantines, degradation.

    A degraded run prints everything it *did* find, then says what it
    could not: which (checker, function) pairs were quarantined and
    which explorations a budget cut short.  ``DEGRADED`` in the footer
    is the machine-greppable marker that the result is partial.
    """
    lines = [format_reports(sink.reports, heading=heading)]
    suppressed = getattr(sink, "suppressed", [])
    if suppressed:
        lines.append("")
        lines.append(f"({len(suppressed)} report(s) suppressed: every "
                     "path to them crossed an unparsed region)")
    if sink.quarantines:
        lines.append("")
        lines.append(format_quarantines(sink.quarantines))
    if sink.degraded:
        lines.append("")
        lines.append("DEGRADED: results are partial")
        for note in sink.degradation_notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)


def format_run_stats(stats) -> str:
    """Render a run's supervision accounting, compactly.

    Only *noteworthy* fields appear (replays, retries, crashes,
    timeouts, quarantines, interruption), so a clean run's summary line
    is byte-identical to one from before supervision existed — the
    determinism pins in CI keep holding.
    """
    parts: list[str] = []
    if stats.replayed:
        parts.append(f"{stats.replayed} replayed")
    if stats.retried:
        parts.append(f"{stats.retried} retried")
    if stats.crashes:
        parts.append(f"{stats.crashes} crash(es)")
    if stats.timeouts:
        parts.append(f"{stats.timeouts} timeout(s)")
    if stats.quarantined:
        parts.append(f"{stats.quarantined} quarantined")
    if stats.interrupted:
        parts.append("interrupted")
    return ", ".join(parts)


def summarize_by_severity(reports) -> dict[str, int]:
    counts: dict[str, int] = {}
    for report in reports:
        counts[report.severity] = counts.get(report.severity, 0) + 1
    return counts


# -- machine-readable reports (``--format json`` / ``mc-check explain``) ------

def report_to_json_obj(report: Report, provenance=None,
                       confidence=None, origin=None) -> dict:
    """One diagnostic as a JSON-able object.

    ``id`` is the stable short hash ``mc-check explain`` takes; it is a
    pure function of (checker, message, location), so it is identical
    across runs, job counts, and cache states.  ``provenance`` is the
    step trail recorded at first emission (may be empty: naive-engine
    and non-engine diagnostics carry none).  ``confidence`` is the
    z-ranking score (:mod:`repro.mc.ranking`), computed from the merged
    run — never cached — so it too is cache-state independent.
    ``origin`` (a :class:`repro.checkers.base.CheckerOrigin`) attributes
    the report to the checker pack that produced it.
    """
    from ..obs.provenance import report_id

    loc = report.location
    obj = {
        "id": report_id(report.checker, report.message, loc.filename,
                        loc.line, loc.column),
        "checker": report.checker,
        "message": report.message,
        "file": loc.filename,
        "line": loc.line,
        "column": loc.column,
        "function": report.function,
        "severity": report.severity,
        "backtrace": [str(frame) for frame in report.backtrace],
        "provenance": list(provenance) if provenance else [],
    }
    if origin is not None:
        obj["pack"] = {"name": origin.pack, "version": origin.version}
    if confidence is not None:
        obj["confidence"] = confidence
    return obj


def _part_origin(part):
    """The :class:`CheckerOrigin` of one merged result, or ``None`` for
    parts that are not registered checkers (textual metal sinks)."""
    from ..checkers.base import checker_origin

    name = getattr(part, "checker", "")
    if not name:
        return None
    try:
        return checker_origin(name)
    except KeyError:
        return None


def run_to_json(run, min_confidence=None) -> dict:
    """A :class:`~repro.mc.parallel.CheckRun` or ``MetalRun`` as the
    ``--format json`` document.

    Deterministic: reports carry the same total order as
    :func:`format_reports`, and nothing in the document depends on
    timing or scheduling — a traced run serialises byte-identically to
    an untraced one.  Every report carries its ranking ``confidence``;
    ``min_confidence`` drops lower-scoring reports from the document
    (summary counts follow).
    """
    from ..obs.provenance import report_key
    from .ranking import score_run

    scores = score_run(run)
    results = getattr(run, "results", None)
    parts = (list(results.values()) if results is not None
             else [sink for _path, sink in run.sinks])
    reports: list[dict] = []
    quarantines: list[dict] = []
    suppressed: list[dict] = []
    degraded = False
    notes: list[str] = []
    for part in parts:
        provenance = getattr(part, "provenance", {})
        origin = _part_origin(part)
        for report in filter_by_confidence(part.reports, scores,
                                           min_confidence):
            reports.append(report_to_json_obj(
                report, provenance.get(report_key(report)),
                confidence=scores.get(report_key(report)),
                origin=origin))
        for report, why in getattr(part, "suppressed", []):
            obj = report_to_json_obj(report, origin=origin)
            obj["suppressed_by"] = why
            suppressed.append(obj)
        for q in part.quarantines:
            quarantines.append({
                "checker": q.checker, "function": q.function,
                "phase": q.phase, "error_type": q.error_type,
                "message": q.message,
            })
        degraded = degraded or bool(part.degraded)
        notes.extend(part.degradation_notes)
    reports.sort(key=lambda o: (o["file"], o["line"], o["column"],
                                o["checker"], o["message"]))
    suppressed.sort(key=lambda o: (o["file"], o["line"], o["column"],
                                   o["checker"], o["message"]))
    summary: dict[str, int] = {}
    for obj in reports:
        summary[obj["severity"]] = summary.get(obj["severity"], 0) + 1
    return {
        "schema": REPORT_JSON_SCHEMA,
        "jobs": getattr(run, "jobs", 1),
        "run_id": getattr(run, "run_id", None),
        "interrupted": bool(getattr(run, "interrupted", False)),
        "degraded": degraded,
        "summary": summary,
        "reports": reports,
        "quarantines": quarantines,
        "suppressed": suppressed,
        "degradation_notes": notes,
    }
