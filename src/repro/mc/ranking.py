"""Statistical report ranking (z-ranking) for checker output.

Kremenek & Engler's z-ranking observation: a check that *succeeds* many
times and *fails* rarely is usually telling the truth when it fails,
while a check that fails at a large fraction of its application sites is
usually misapplied.  This module assigns every surviving report a
deterministic confidence in ``(0, 1)`` built from three multiplicative
factors:

``base``
    the checker's hit/miss statistics this run: with ``s`` successful
    applications and ``f`` failures (reports), the z-statistic
    ``z = (s - f) / sqrt(s + f)`` is squashed into ``(0, 1)`` via
    ``0.5 + 0.5 * z / (1 + |z|)``.  A checker whose "Applied" count is
    unknown (textual metal runs) scores a neutral ``0.5``.

``cascade``
    ``1 / (1 + 0.25 * (k - 1))`` where ``k`` is the number of reports
    sharing this report's (checker, function).  The paper's §6 cascade
    — one wrong assumption about a helper producing "over twenty"
    useless diagnostics in a row — is the motivating case: the more a
    single function's reports pile up, the more likely one root cause
    explains them all.

``strength``
    path-feasibility strength from provenance: on a trail with ``b``
    branch decisions of which ``v`` were verified by facts already on
    the path (or had their infeasible sibling pruned),
    ``min(1, (1 + v) / (1 + b))``.  A report reached through many
    unconstrained branch guesses ranks below one on a path feasibility
    actually vetted.  Reports without provenance score ``1.0`` here
    (no evidence against them).

Scores are computed parent-side from the merged run — never inside
workers — so cached and journaled payloads stay score-free and
byte-stable across cache states; ``confidence`` is attached at render
time by :mod:`repro.mc.report` and filtered by ``--min-confidence``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.provenance import report_key


def base_score(applied: Optional[int], failures: int) -> float:
    """The z-ranking factor for one checker's run-wide statistics."""
    if applied is None:
        return 0.5
    successes = max(applied - failures, 0)
    total = successes + failures
    if total <= 0:
        return 0.5
    z = (successes - failures) / math.sqrt(total)
    return 0.5 + 0.5 * z / (1.0 + abs(z))


def cascade_factor(shared: int) -> float:
    """Discount for ``shared`` reports on one (checker, function)."""
    return 1.0 / (1.0 + 0.25 * (max(shared, 1) - 1))


def strength_factor(steps: Optional[list]) -> float:
    """Feasibility strength of one provenance trail."""
    if not steps:
        return 1.0
    branches = 0
    verified = 0
    for step in steps:
        kind = step.get("kind")
        if kind == "branch":
            branches += 1
            if step.get("fact"):
                verified += 1
        elif kind == "pruned":
            verified += 1
    return min(1.0, (1 + verified) / (1 + branches))


def dynamic_boost(score: float) -> float:
    """The dynamically-confirmed evidence factor.

    A simulation campaign (:mod:`repro.campaign`) that actually
    triggered a report's bug class in code the run executed is the
    strongest evidence a static report can get: the score moves halfway
    from wherever the static factors left it toward certainty
    (``s + (1 - s) / 2``), monotonically — a confirmed report always
    outranks its unconfirmed self, but never reaches 1.0 (the dynamic
    match is by bug class + function, not by site).
    """
    return min(round(score + (1.0 - score) * 0.5, 4), 0.9999)


def _score_group(reports: list, applied: Optional[int],
                 provenance: dict, scores: dict) -> None:
    """Score one checker's reports into ``scores`` (keyed by report key)."""
    base = base_score(applied, len(reports))
    by_function: dict[tuple, int] = {}
    for report in reports:
        fn = (report.checker, report.function)
        by_function[fn] = by_function.get(fn, 0) + 1
    for report in reports:
        key = report_key(report)
        cascade = cascade_factor(by_function[(report.checker,
                                              report.function)])
        strength = strength_factor(provenance.get(key))
        scores[key] = round(base * cascade * strength, 4)


def score_run(run, dynamically_confirmed: Optional[frozenset] = None) -> dict:
    """Confidence per report key for a merged run.

    Accepts both fleet run shapes: a ``CheckRun`` (``results`` maps
    checker name to :class:`repro.checkers.base.CheckerResult`, whose
    ``applied`` feeds the z-statistic) and a ``MetalRun`` (``sinks`` is
    ``[(path, ReportSink)]``; no applied counts, neutral base).

    ``dynamically_confirmed`` is the campaign evidence source: report
    keys a simulation campaign confirmed get :func:`dynamic_boost`
    applied on top of the static factors.
    """
    scores: dict = {}
    results = getattr(run, "results", None)
    if results is not None:
        for result in results.values():
            _score_group(result.reports, result.applied,
                         result.provenance, scores)
    else:
        for _path, sink in getattr(run, "sinks", ()):
            _score_group(sink.reports, None, sink.provenance, scores)
    if dynamically_confirmed:
        for key in dynamically_confirmed:
            if key in scores:
                scores[key] = dynamic_boost(scores[key])
    return scores


def confidence_of(report, scores: dict) -> Optional[float]:
    """The score for one report, or None when the run wasn't scored."""
    if not scores:
        return None
    return scores.get(report_key(report))
