"""Worker-level fault injection for the supervised checker fleet.

The simulator's :class:`~repro.faults.injector.FaultInjector` perturbs
the *system under test*; this module perturbs the *analysis
infrastructure itself* — the fleet's worker processes — so the
supervisor (:mod:`repro.mc.supervisor`) can be exercised by the same
declarative, seeded :class:`~repro.faults.plan.FaultPlan` machinery:

- ``worker_crash``: the worker process exits hard (``os._exit``), the
  way an OOM kill or a segfaulting native extension would take it down;
- ``worker_hang``: the worker stops responding, exercising per-item
  timeouts and hung-worker kill/respawn;
- ``worker_slow``: the worker stalls briefly, exercising scheduling
  and backoff without losing the item.

Unlike the simulator's injector, which counts runtime events, decisions
here are a **pure function of (work-item dispatch index, attempt
number)**: ``after``/``every``/``count`` select item indexes as an
arithmetic progression, ``attempts`` says how many consecutive attempts
of a selected item fire, ``handler`` narrows by checker name, and
``probability`` is a per-(rule, item, attempt) seeded coin.  That keeps
a plan's behaviour identical no matter how many workers exist or how
the scheduler interleaves items across them — the property every
retry-then-identical-report test in ``tests/test_supervisor.py`` leans
on.
"""

from __future__ import annotations

import os
import time
from random import Random
from typing import Optional

from .plan import FaultPlan, FaultRule, WORKER_SITES

#: Exit status a worker dies with under ``worker_crash`` — distinctive
#: enough to spot in process listings and supervisor logs (EX_SOFTWARE).
CRASH_EXIT_CODE = 70

#: ``worker_hang`` sleeps this long when the rule gives no ``seconds``:
#: far past any sane ``--item-timeout``, so the hang is always detected
#: as a hang, never mistaken for slowness.
HANG_SECONDS = 3600.0

#: Default stall for ``worker_slow``.
SLOW_SECONDS = 0.2


class WorkerFaultInjector:
    """Evaluates a plan's worker-site rules inside a fleet worker."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rules: list[tuple[int, FaultRule]] = [
            (index, rule) for index, rule in enumerate(plan.rules)
            if rule.site in WORKER_SITES
        ]

    def rule_for(self, item_index: int, attempt: int,
                 checker: str = "") -> Optional[FaultRule]:
        """The first rule firing for this (item, attempt), or ``None``."""
        for rule_index, rule in self.rules:
            if rule.handler is not None and rule.handler != checker:
                continue
            if item_index < rule.after:
                continue
            if (item_index - rule.after) % rule.every != 0:
                continue
            ordinal = (item_index - rule.after) // rule.every
            if rule.count is not None and ordinal >= rule.count:
                continue
            if attempt >= rule.attempts:
                continue
            if rule.probability is not None:
                coin = Random(
                    f"{self.plan.seed}:{rule_index}:{item_index}:{attempt}"
                ).random()
                if coin >= rule.probability:
                    continue
            return rule
        return None

    def perturb(self, item_index: int, attempt: int,
                checker: str = "") -> None:
        """Inject the matching fault, if any, into the calling worker."""
        rule = self.rule_for(item_index, attempt, checker)
        if rule is None:
            return
        if rule.site == "worker_slow":
            time.sleep(rule.seconds if rule.seconds is not None
                       else SLOW_SECONDS)
        elif rule.site == "worker_hang":
            time.sleep(rule.seconds if rule.seconds is not None
                       else HANG_SECONDS)
        elif rule.site == "worker_crash":
            # A hard death, not an exception: the supervisor must see a
            # vanished process, exactly like an OOM kill would leave.
            os._exit(CRASH_EXIT_CODE)
