"""Deterministic fault injection for the FlashLite-lite simulator.

The paper's checkers target failure paths that testing rarely reaches;
this package forces those paths on demand.  Declare *what* to break in
a :class:`FaultPlan` (pure data, JSON-loadable), and the simulator's
:class:`FaultInjector` makes it happen deterministically: same plan,
same seed, same run.
"""

from .injector import FaultInjector
from .plan import SITES, FaultEvent, FaultPlan, FaultRule, load_fault_plan

__all__ = [
    "SITES", "FaultEvent", "FaultPlan", "FaultRule", "FaultInjector",
    "load_fault_plan",
]
