"""Deterministic fault injection for the FlashLite-lite simulator and
the checker fleet.

The paper's checkers target failure paths that testing rarely reaches;
this package forces those paths on demand.  Declare *what* to break in
a :class:`FaultPlan` (pure data, JSON-loadable), and the right injector
makes it happen deterministically: same plan, same seed, same run.
Simulator sites (:data:`SIM_SITES`) perturb the protocol under test via
:class:`FaultInjector`; worker sites (:data:`WORKER_SITES`) perturb the
analysis fleet's own processes via :class:`WorkerFaultInjector`, so the
supervision layer is tested by the same machinery.
"""

from .injector import FaultInjector
from .plan import (
    SIM_SITES,
    SITES,
    WORKER_SITES,
    FaultEvent,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)
from .worker import CRASH_EXIT_CODE, WorkerFaultInjector

__all__ = [
    "SIM_SITES", "SITES", "WORKER_SITES",
    "FaultEvent", "FaultPlan", "FaultRule",
    "FaultInjector", "WorkerFaultInjector", "CRASH_EXIT_CODE",
    "load_fault_plan",
]
