"""Deterministic fault plans for the FlashLite-lite simulator.

The paper's core claim is that static checking finds bugs on *failure
paths* — buffer-allocation failure, lane backpressure, adverse message
timing — that dynamic testing almost never exercises.  A
:class:`FaultPlan` closes that loop: it is a declarative, seeded
description of which failure paths to force and when, so a seeded bug
class can be made to manifest in simulation on demand, repeatably.

A plan is a list of :class:`FaultRule` objects.  Each rule names an
injection *site* (one of :data:`SITES`) and narrows when it fires:

- ``node`` / ``handler`` / ``lane``: only while that node, dispatched
  handler, or virtual lane is active;
- ``from_cycle`` / ``until_cycle``: only inside a window of the global
  interpreter-step clock;
- ``after`` / ``every`` / ``count``: skip the first N eligible events,
  then fire on every Nth, up to a cap;
- ``probability``: a per-rule seeded coin, so rare faults stay rare but
  identical across runs with the same plan seed.

Plans are plain data (JSON-serializable) so the CLI can load them from
a file via ``--fault-plan``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..errors import FaultPlanError

#: Every site the simulator exposes for injection.
SIM_SITES = frozenset({
    "hw_alloc_fail",   # BufferPool.hw_allocate: arriving message finds no buffer
    "alloc_fail",      # BufferPool.allocate: DB_ALLOC returns the error value
    "lane_overflow",   # OutputQueues.send: backpressure — the lane has no slot
    "msg_delay",       # OutputQueues.send: message is reordered to the back
    "msg_dup",         # OutputQueues.send: message is duplicated in its lane
    "handler_crash",   # Interpreter tick: the running handler dies mid-path
})

#: Sites injected into the *checker fleet's* worker processes (see
#: :mod:`repro.faults.worker`), so the supervisor's crash/hang/retry
#: machinery is exercised by the same declarative plans as the
#: simulator.  For these sites ``after``/``every``/``count`` select
#: work-item *dispatch indexes* (an arithmetic progression) rather than
#: runtime event counts, ``handler`` narrows by checker name, and
#: ``attempts``/``seconds`` shape the fault itself.
WORKER_SITES = frozenset({
    "worker_crash",    # the worker process dies (os._exit) mid-item
    "worker_hang",     # the worker stops responding (sleeps past any timeout)
    "worker_slow",     # the worker stalls for `seconds` before proceeding
})

SITES = SIM_SITES | WORKER_SITES


@dataclass(frozen=True)
class FaultRule:
    """One trigger: *at this site, under these conditions, fire like so*."""

    site: str
    node: Optional[int] = None
    handler: Optional[str] = None
    lane: Optional[int] = None
    from_cycle: Optional[int] = None
    until_cycle: Optional[int] = None
    after: int = 0
    every: int = 1
    count: Optional[int] = None
    probability: Optional[float] = None
    #: Worker sites only: fire on the first N attempts of a selected
    #: item.  The default (1) crashes an item once and lets the
    #: supervisor's retry succeed; a value above the retry limit forces
    #: the item into quarantine.
    attempts: int = 1
    #: Worker sites only: how long ``worker_slow``/``worker_hang``
    #: stalls (defaults: a short stall / longer than any sane timeout).
    seconds: Optional[float] = None

    def __post_init__(self):
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        if self.after < 0:
            raise FaultPlanError(f"after must be >= 0, got {self.after}")
        if self.every < 1:
            raise FaultPlanError(f"every must be >= 1, got {self.every}")
        if self.count is not None and self.count < 1:
            raise FaultPlanError(f"count must be >= 1, got {self.count}")
        if (self.from_cycle is not None and self.until_cycle is not None
                and self.until_cycle < self.from_cycle):
            raise FaultPlanError(
                f"empty cycle window: until_cycle {self.until_cycle} < "
                f"from_cycle {self.from_cycle}"
            )
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.attempts < 1:
            raise FaultPlanError(f"attempts must be >= 1, got {self.attempts}")
        if self.seconds is not None and self.seconds < 0:
            raise FaultPlanError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class FaultEvent:
    """One firing of one rule, recorded for reporting and determinism tests."""

    site: str
    node: Optional[int]
    handler: Optional[str]
    lane: Optional[int]
    cycle: int
    rule_index: int

    def __str__(self) -> str:
        where = f"node {self.node}" if self.node is not None else "machine"
        who = f" in {self.handler}" if self.handler else ""
        lane = f" lane {self.lane}" if self.lane is not None else ""
        return (f"{self.site} @ cycle {self.cycle} on {where}{who}{lane} "
                f"(rule {self.rule_index})")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules."""

    rules: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(f"not a FaultRule: {rule!r}")

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [
                {k: v for k, v in asdict(rule).items() if v is not None}
                for rule in self.rules
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys: {', '.join(sorted(unknown))}"
            )
        rules = []
        for i, raw in enumerate(data.get("rules", [])):
            if not isinstance(raw, dict):
                raise FaultPlanError(f"rule {i} must be a JSON object")
            try:
                rules.append(FaultRule(**raw))
            except TypeError as exc:
                raise FaultPlanError(f"rule {i}: {exc}") from None
        return cls(rules=tuple(rules), seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str, filename: str = "<fault-plan>") -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{filename}: invalid JSON: {exc}") from None
        return cls.from_dict(data)


def load_fault_plan(path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    from pathlib import Path
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {p}: {exc}") from None
    return FaultPlan.from_json(text, filename=str(p))
