"""Runtime side of fault injection: counters, context, and the clock.

A :class:`FaultInjector` is created by the machine from a
:class:`~repro.faults.plan.FaultPlan` and threaded into every node's
buffer pool, output queues, and interpreter.  The simulator asks it one
question — :meth:`fires` — at each injection site; everything that makes
the answer deterministic lives here:

- a **cycle clock** advanced once per interpreted statement/expression
  (the interpreter's tick hook), shared machine-wide;
- a **context** (node id, handler name) set around each handler run;
- **per-rule counters** of eligible events and firings;
- **per-rule seeded RNGs** for probability rules, derived from the plan
  seed and the rule index so rule order is part of the contract.

Every firing is appended to :attr:`events`, which the machine copies
into ``SimStats`` so a run can report exactly which faults it forced.
"""

from __future__ import annotations

from random import Random
from typing import Optional

from ..errors import InjectedFault
from .plan import FaultEvent, FaultPlan


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the running simulation."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.cycle = 0
        self.node_id: Optional[int] = None
        self.handler: Optional[str] = None
        self._eligible = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)
        self._rngs = [
            Random(plan.seed * 1000003 + index)
            for index in range(len(plan.rules))
        ]
        self.events: list[FaultEvent] = []

    # -- context ------------------------------------------------------------

    def begin_handler(self, node_id: int, handler: str) -> None:
        self.node_id = node_id
        self.handler = handler

    def end_handler(self) -> None:
        self.node_id = None
        self.handler = None

    # -- the clock ----------------------------------------------------------

    def tick(self, _node=None) -> None:
        """Interpreter tick hook: advance the clock, maybe crash the handler."""
        self.cycle += 1
        if self.fires("handler_crash"):
            raise InjectedFault(
                f"fault plan crashed handler {self.handler!r} on node "
                f"{self.node_id} at cycle {self.cycle}"
            )

    # -- the one question the simulator asks ---------------------------------

    def fires(self, site: str, lane: Optional[int] = None) -> bool:
        """Should a fault be injected at ``site`` right now?

        Evaluates every rule (several may match one event; each records
        its own firing), so rule counters stay deterministic regardless
        of which rule answers first.
        """
        fired = False
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.node is not None and rule.node != self.node_id:
                continue
            if rule.handler is not None and rule.handler != self.handler:
                continue
            if rule.lane is not None and rule.lane != lane:
                continue
            if rule.from_cycle is not None and self.cycle < rule.from_cycle:
                continue
            if rule.until_cycle is not None and self.cycle >= rule.until_cycle:
                continue
            self._eligible[index] += 1
            n = self._eligible[index]
            if n <= rule.after:
                continue
            if (n - rule.after - 1) % rule.every != 0:
                continue
            if rule.count is not None and self._fired[index] >= rule.count:
                continue
            if (rule.probability is not None
                    and self._rngs[index].random() >= rule.probability):
                continue
            self._fired[index] += 1
            self.events.append(FaultEvent(
                site=site, node=self.node_id, handler=self.handler,
                lane=lane, cycle=self.cycle, rule_index=index,
            ))
            fired = True
        return fired

    # -- reporting -----------------------------------------------------------

    def counts_by_site(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.site] = counts.get(event.site, 0) + 1
        return counts
