"""A *program under analysis*: parsed protocol sources plus the
protocol-writer-supplied tables the checkers consult.

The paper's checkers are parameterized by small amounts of system
knowledge: which routines are hardware/software handlers, each handler's
per-lane send allowance, which routines free or expect data buffers,
which return 0/1 depending on whether they freed (§6), and which
subroutines write back directory entries on the caller's behalf (§9).
:class:`ProtocolInfo` carries those tables; :class:`Program` bundles them
with the parsed and type-annotated translation units and caches CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .cfg import CallGraph, Cfg, build_cfg
from .errors import SourceReadError
from .flash.headers import FLASH_INCLUDES, FLASH_INCLUDES_NAME
from .lang import annotate, ast, parse, parse_annotated
from .flash.machine import LANE_COUNT
from .mc.cache import seed_fingerprints


def read_sources(paths: Iterable[str]) -> dict[str, str]:
    """Read translation-unit sources, surfacing failures structurally.

    An unreadable file raises :class:`SourceReadError` carrying the
    path, so drivers can report *which* input broke (or, inside a fleet
    worker, quarantine just that work item) instead of leaking a bare
    ``OSError`` traceback.
    """
    sources: dict[str, str] = {}
    for path in paths:
        try:
            sources[path] = Path(path).read_text()
        except UnicodeDecodeError:
            # Binary / non-UTF-8 input.  Decode permissively so the
            # tolerant frontend can still run over it (strict mode will
            # reject the resulting byte soup with an ordinary LexError
            # rather than an internal traceback).
            try:
                sources[path] = Path(path).read_bytes().decode(
                    "utf-8", errors="replace")
            except OSError as exc:
                raise SourceReadError(
                    f"cannot read source file {path}: {exc}", path=path
                ) from exc
        except OSError as exc:
            raise SourceReadError(
                f"cannot read source file {path}: {exc}", path=path
            ) from exc
    return sources


@dataclass(frozen=True)
class HandlerInfo:
    """One entry of the protocol's handler table."""

    name: str
    kind: str  # "hw" (hardware handler), "sw" (software handler), "proc"
    lane_allowance: tuple = (1,) * LANE_COUNT
    nostack: bool = False

    def __post_init__(self):
        if self.kind not in ("hw", "sw", "proc"):
            raise ValueError(f"bad handler kind {self.kind!r}")
        if len(self.lane_allowance) != LANE_COUNT:
            raise ValueError("lane_allowance must cover all lanes")


@dataclass
class ProtocolInfo:
    """Protocol-writer-supplied tables (the checkers' configuration)."""

    name: str = "protocol"
    handlers: dict[str, HandlerInfo] = field(default_factory=dict)
    #: Routines that free the handler's current buffer when called (§6).
    free_routines: set[str] = field(default_factory=set)
    #: Routines that expect a live buffer (uses, for the §6 checker).
    buffer_use_routines: set[str] = field(default_factory=set)
    #: Routines returning nonzero iff they freed the buffer (§6's 12-line
    #: refinement that removed over twenty useless annotations).
    frees_if_true: set[str] = field(default_factory=set)
    #: Subroutines that write the directory entry back for their caller.
    dir_writeback_routines: set[str] = field(default_factory=set)
    #: Protocol message listing: handler name -> declared message-length
    #: constant (``LEN_NODATA``/``LEN_WORD``/``LEN_CACHELINE``) — the
    #: table the consistency pack cross-checks against the code.
    messages: dict[str, str] = field(default_factory=dict)
    #: Simulator dispatch-table registrations: opcode -> handler name.
    dispatch: dict[int, str] = field(default_factory=dict)

    def handler(self, name: str) -> Optional[HandlerInfo]:
        return self.handlers.get(name)

    def kind_of(self, name: str) -> str:
        info = self.handlers.get(name)
        return info.kind if info is not None else "proc"

    def is_handler(self, name: str) -> bool:
        return self.kind_of(name) in ("hw", "sw")

    def hardware_handlers(self) -> list[str]:
        return [h.name for h in self.handlers.values() if h.kind == "hw"]

    def software_handlers(self) -> list[str]:
        return [h.name for h in self.handlers.values() if h.kind == "sw"]


_HEADER_CACHE: dict[str, tuple] = {}


def _flash_prelude() -> tuple:
    """Parse flash-includes.h once; returns (unit, typedef names)."""
    cached = _HEADER_CACHE.get(FLASH_INCLUDES_NAME)
    if cached is None:
        from .lang.parser import Lexer, Parser
        from .lang.source import SourceFile
        tokens = Lexer(SourceFile(FLASH_INCLUDES_NAME, FLASH_INCLUDES)).tokenize()
        parser = Parser(tokens, FLASH_INCLUDES_NAME)
        unit = parser.parse_translation_unit()
        cached = (unit, frozenset(parser.typedefs))
        _HEADER_CACHE[FLASH_INCLUDES_NAME] = cached
    return cached


class Program:
    """Parsed, annotated protocol sources plus cached CFGs.

    The FLASH header (:data:`repro.flash.headers.FLASH_INCLUDES`) is
    parsed separately and fed to sema as a prelude, so every diagnostic
    keeps the protocol file's own line numbers.
    """

    def __init__(self, files: dict[str, str], info: Optional[ProtocolInfo] = None,
                 include_flash_header: bool = True, unit_memo: bool = False):
        self.info = info if info is not None else ProtocolInfo()
        self.sources: dict[str, str] = dict(files)
        self.units: dict[str, ast.TranslationUnit] = {}
        self._cfgs: dict[str, Cfg] = {}
        self._calls: dict[str, tuple] = {}
        self._callgraph: Optional[CallGraph] = None
        self._unit_memo = unit_memo
        prelude = None
        typedefs: set[str] = set()
        if include_flash_header:
            prelude, header_typedefs = _flash_prelude()
            typedefs = set(header_typedefs)
        self.sema: dict[str, "object"] = {}
        for filename, text in files.items():
            if unit_memo:
                # Content-hash memo: many Programs in one process (one
                # per (checker, unit) work item) share a parse.  Callers
                # must treat memoized ASTs as read-only.
                unit, sema = parse_annotated(
                    filename, text, typedefs=typedefs, prelude=prelude,
                    prelude_key=FLASH_INCLUDES_NAME if prelude is not None else "",
                )
            else:
                unit = parse(text, filename, typedefs=set(typedefs))
                sema = annotate(unit, prelude=prelude)
            self.sema[filename] = sema
            self.units[filename] = unit
            # Stash source-derived function fingerprints so the summary
            # engine's store keys never need a per-function AST walk.
            seed_fingerprints(
                unit, filename, text,
                context=FLASH_INCLUDES if include_flash_header else "")

    # -- access -------------------------------------------------------------

    def functions(self) -> list[ast.FunctionDef]:
        result: list[ast.FunctionDef] = []
        for unit in self.units.values():
            result.extend(unit.functions())
        return result

    def function(self, name: str) -> ast.FunctionDef:
        for unit in self.units.values():
            for func in unit.functions():
                if func.name == name:
                    return func
        raise KeyError(name)

    def cfg(self, function: ast.FunctionDef) -> Cfg:
        cached = self._cfgs.get(function.name)
        if cached is not None and cached.function is function:
            return cached
        if self._unit_memo:
            # Memoized units share function ASTs across Programs (one
            # per (checker, unit) work item); pinning the CFG on the
            # node builds it once per process and can never go stale —
            # an edited file re-parses into fresh nodes.
            cfg = getattr(function, "_memo_cfg", None)
            if cfg is None:
                cfg = build_cfg(function)
                function._memo_cfg = cfg
        else:
            cfg = build_cfg(function)
        self._cfgs[function.name] = cfg
        return cfg

    def cfgs(self) -> list[Cfg]:
        return [self.cfg(f) for f in self.functions()]

    def calls(self, function: ast.FunctionDef) -> tuple:
        """Every ``Call`` node of ``function``, memoized.

        Checkers count their applied sites by scanning call sites; with
        six checkers per program that used to mean six full AST walks.
        This shared index reads the engine's per-event node tuples
        (every statement node appears in some CFG block event), so after
        the first engine pass over a function no AST walk remains.
        """
        cached = self._calls.get(function.name)
        if cached is not None and cached[0] is function:
            return cached[1]
        from .mc.summary import event_index
        index = event_index(self.cfg(function))
        calls = tuple(node for entry in index.values()
                      for node in entry[0] if isinstance(node, ast.Call))
        self._calls[function.name] = (function, calls)
        return calls

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph.from_cfgs(self.cfgs())
        return self._callgraph

    def loc(self) -> int:
        """Total non-blank source lines across protocol files."""
        total = 0
        for text in self.sources.values():
            total += sum(1 for line in text.splitlines() if line.strip())
        return total


def program_from_source(source: str, info: Optional[ProtocolInfo] = None,
                        filename: str = "protocol.c") -> Program:
    """Convenience for tests and examples: one in-memory file."""
    return Program({filename: source}, info=info)
