"""Discovery and loading of checker packs.

The paper's thesis is that system implementors write their own
checkers; this module makes that a first-class workflow.  A pack
directory (see :mod:`repro.packs.manifest`) is discovered from
``--pack-dir`` flags, the ``MC_CHECK_PACK_PATH`` environment variable,
or a project-level ``mc-check.toml``; loading it

* validates the manifest (schema, engine-version constraint),
* imports each Python checker module and registers every
  :class:`~repro.checkers.base.Checker` subclass it defines,
* parses each metal program, **lints it** with the checker-of-checkers
  (:func:`repro.metal.lint.lint_machine`) — a machine with undeclared
  targets, unreachable states, or dead rules is refused with a
  structured diagnostic — and wraps it as a registered checker,
* records provenance (:class:`~repro.checkers.base.CheckerOrigin`:
  pack name, version, source file) so cache keys, report JSON, and
  ``mc-check explain`` attribute every finding to the pack.

Loading is transactional per pack: any failure unregisters whatever
the pack had registered so far, so a broken pack leaves no residue.
Re-loading the same pack directory is idempotent; re-loading it after
a version bump replaces the previous registration (a pack upgrade).
Name collisions between packs, or with builtins, are load errors.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from ..checkers.base import (
    Checker,
    CheckerOrigin,
    register_pack_checker,
    unregister_pack_checker,
)
from .manifest import MANIFEST_NAME, PackError, PackManifest, load_manifest

__all__ = [
    "LoadedPack", "discover_pack_dirs", "load_pack", "load_packs",
    "loaded_packs", "clear_packs", "project_pack_dirs",
    "PACK_PATH_ENV", "PROJECT_CONFIG",
]

#: ``os.pathsep``-separated pack directories, merged after ``--pack-dir``.
PACK_PATH_ENV = "MC_CHECK_PACK_PATH"

#: Project-level configuration file consulted in the working directory:
#: ``[packs] dirs = ["./packs/foo", ...]`` (paths relative to the file).
PROJECT_CONFIG = "mc-check.toml"


@dataclass(frozen=True)
class LoadedPack:
    """One successfully loaded pack and the checker names it provides."""

    manifest: PackManifest
    checkers: tuple

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def version(self) -> str:
        return self.manifest.version

    @property
    def label(self) -> str:
        return self.manifest.label


#: Pack name -> LoadedPack, in load order.
_LOADED: dict[str, LoadedPack] = {}


def loaded_packs() -> list[LoadedPack]:
    """Every currently loaded pack, in load order."""
    return list(_LOADED.values())


def clear_packs() -> None:
    """Unload every pack (tests; daemon reconfiguration)."""
    for pack in list(_LOADED.values()):
        _unload(pack)
    _LOADED.clear()


def _unload(pack: LoadedPack) -> None:
    for name in pack.checkers:
        unregister_pack_checker(name)


# -- discovery ---------------------------------------------------------------

def project_pack_dirs(start: Optional[Path] = None) -> list[Path]:
    """Pack directories named by ``mc-check.toml`` in ``start`` (default:
    the working directory).  Missing file means no project packs; a
    malformed file is a structured :class:`PackError`."""
    base = Path(start) if start is not None else Path.cwd()
    config = base / PROJECT_CONFIG
    if not config.is_file():
        return []
    from .manifest import _parse_toml
    try:
        text = config.read_text()
    except OSError as exc:
        raise PackError(f"{config}: unreadable: {exc}") from None
    doc = _parse_toml(text, str(config))
    packs = doc.get("packs", {})
    if not isinstance(packs, dict):
        raise PackError(f"{config}: [packs] must be a table")
    dirs = packs.get("dirs", [])
    if not isinstance(dirs, list) or not all(
            isinstance(d, str) for d in dirs):
        raise PackError(f"{config}: [packs] dirs must be a list of paths")
    return [(base / d) if not Path(d).is_absolute() else Path(d)
            for d in dirs]


def discover_pack_dirs(cli_dirs: Iterable = (),
                       env: Optional[dict] = None,
                       project_root: Optional[Path] = None) -> list[Path]:
    """Resolve the run's pack directories, in deterministic order:
    ``--pack-dir`` flags first, then ``$MC_CHECK_PACK_PATH`` entries,
    then the project config's — each expanded so a directory that
    *contains* packs (subdirectories with a ``pack.toml``) contributes
    every pack it holds, sorted by name."""
    environ = env if env is not None else os.environ
    roots: list[Path] = [Path(d) for d in cli_dirs]
    path_var = environ.get(PACK_PATH_ENV, "")
    roots.extend(Path(part) for part in path_var.split(os.pathsep) if part)
    roots.extend(project_pack_dirs(project_root))
    result: list[Path] = []
    seen: set[str] = set()
    for root in roots:
        for pack_dir in _expand(root):
            key = str(pack_dir.resolve())
            if key in seen:
                continue
            seen.add(key)
            result.append(pack_dir)
    return result


def _expand(root: Path) -> list[Path]:
    """A pack directory itself, or every pack directory inside it."""
    if (root / MANIFEST_NAME).is_file():
        return [root]
    if not root.is_dir():
        raise PackError(f"{root}: not a directory (and no {MANIFEST_NAME})")
    found = sorted(
        (child for child in root.iterdir()
         if child.is_dir() and (child / MANIFEST_NAME).is_file()),
        key=lambda p: p.name)
    if not found:
        raise PackError(
            f"{root}: no {MANIFEST_NAME} here or in any subdirectory")
    return found


# -- loading -----------------------------------------------------------------

def load_packs(dirs: Iterable) -> list[LoadedPack]:
    """Load every pack directory in order; returns the loaded packs.

    Idempotent for already-loaded (same directory, same version) packs;
    a version change at the same directory replaces the old
    registration.  Two *different* directories claiming the same pack
    name are a structured error.
    """
    packs: list[LoadedPack] = []
    for pack_dir in dirs:
        packs.append(load_pack(pack_dir))
    return packs


def load_pack(pack_dir) -> LoadedPack:
    """Load one pack directory (manifest, modules, lint, registration)."""
    manifest = load_manifest(pack_dir)
    previous = _LOADED.get(manifest.name)
    if previous is not None:
        same_root = (previous.manifest.root.resolve()
                     == manifest.root.resolve())
        if not same_root:
            raise PackError(
                f"{manifest.root}/{MANIFEST_NAME}: duplicate pack name "
                f"{manifest.name!r} (already loaded from "
                f"{previous.manifest.root})")
        if previous.version == manifest.version:
            return previous  # idempotent re-load (e.g. worker re-init)
        _unload(previous)   # version bump at the same root: upgrade
        _LOADED.pop(manifest.name, None)

    origin_of = lambda rel: CheckerOrigin(  # noqa: E731 - tiny helper
        pack=manifest.name, version=manifest.version,
        source=str(manifest.root / rel))
    registered: list[str] = []
    try:
        for rel in manifest.python_checkers:
            registered.extend(
                _load_python_module(manifest, rel, origin_of(rel)))
        for rel in manifest.metal_checkers:
            registered.append(
                _load_metal_checker(manifest, rel, origin_of(rel)))
    except PackError:
        for name in registered:
            unregister_pack_checker(name)
        raise
    except Exception as exc:
        for name in registered:
            unregister_pack_checker(name)
        raise PackError(
            f"pack {manifest.label}: load failed: "
            f"{type(exc).__name__}: {exc}") from None
    pack = LoadedPack(manifest=manifest, checkers=tuple(registered))
    _LOADED[manifest.name] = pack
    return pack


def _load_python_module(manifest: PackManifest, rel: str,
                        origin: CheckerOrigin) -> list[str]:
    """Import one pack module and register its checker classes."""
    path = manifest.root / rel
    module_name = (f"repro_packs.{manifest.name.replace('-', '_')}"
                   f".{path.stem}")
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise PackError(
            f"pack {manifest.label}: cannot import {rel!r}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise PackError(
            f"pack {manifest.label}: {rel}: import failed: "
            f"{type(exc).__name__}: {exc}") from None
    classes = [obj for obj in vars(module).values()
               if isinstance(obj, type) and issubclass(obj, Checker)
               and obj is not Checker and obj.__module__ == module_name]
    if not classes:
        raise PackError(
            f"pack {manifest.label}: {rel} defines no Checker subclass")
    names: list[str] = []
    try:
        for cls in classes:
            register_pack_checker(cls, origin)
            names.append(cls.name)
    except PackError:
        # A later class collided: the module's earlier registrations
        # must not survive the failed load.
        for name in names:
            unregister_pack_checker(name)
        raise
    return names


def _load_metal_checker(manifest: PackManifest, rel: str,
                        origin: CheckerOrigin) -> str:
    """Parse, lint, and wrap one textual metal program as a checker.

    The lint gate is the load-time half of the sandbox contract: a
    machine that cannot run correctly (typo'd transition target,
    unreachable state, dead rule) is refused before it can produce
    silently-wrong results in a fleet.
    """
    from ..errors import MetalError
    from ..metal import lint_machine
    from ..metal.parser import parse_metal

    path = manifest.root / rel
    try:
        text = path.read_text()
    except OSError as exc:
        raise PackError(
            f"pack {manifest.label}: cannot read {rel}: {exc}") from None
    try:
        sm = parse_metal(text, filename=str(path))
    except MetalError as exc:
        raise PackError(
            f"pack {manifest.label}: {rel}: {exc}") from None
    findings = lint_machine(sm)
    if findings:
        details = "; ".join(str(f) for f in findings)
        raise PackError(
            f"pack {manifest.label}: {rel} fails lint "
            f"({len(findings)} finding(s)): {details}")
    checker_name = sm.name.replace("_", "-")
    loc = sum(1 for line in text.splitlines() if line.strip())

    class MetalPackChecker(Checker):
        """A pack's textual metal program, run per translation unit."""

        name = checker_name
        metal_loc = loc
        unit_parallel = True
        _metal_text = text
        _metal_name = str(path)

        def check(self, program):
            from ..mc.engine import check_unit
            result, sink = self._new_result()
            sm_local = parse_metal(self._metal_text,
                                   filename=self._metal_name)
            for unit in program.units.values():
                check_unit(sm_local, unit, sink, keep_going=True)
            result.applied = len(program.functions())
            return self._finish(result, sink)

    MetalPackChecker.__name__ = f"MetalPackChecker_{sm.name}"
    MetalPackChecker.__qualname__ = MetalPackChecker.__name__
    register_pack_checker(MetalPackChecker, origin)
    return checker_name
