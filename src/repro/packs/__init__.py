"""Checker packs: discoverable, versioned, sandboxed third-party checkers.

The paper's pitch is that *implementors* extend the checker — this
package turns that into a deployment format.  A pack is a directory
with a ``pack.toml`` manifest naming Python checker modules and/or
textual metal programs; `mc-check --pack-dir` (or ``MC_CHECK_PACK_PATH``
or a project ``mc-check.toml``) discovers it, `repro.packs.loader`
validates + lints + registers it, and from there the fleet treats its
checkers exactly like builtins — except that pack code always runs
sandboxed (an exception becomes ``Quarantine(phase="pack")``) and every
cache key and report carries the pack's name@version.
"""

from .loader import (
    PACK_PATH_ENV,
    PROJECT_CONFIG,
    LoadedPack,
    clear_packs,
    discover_pack_dirs,
    load_pack,
    load_packs,
    loaded_packs,
    project_pack_dirs,
)
from .manifest import MANIFEST_NAME, PackError, PackManifest, load_manifest

__all__ = [
    "PackError", "PackManifest", "LoadedPack", "MANIFEST_NAME",
    "PACK_PATH_ENV", "PROJECT_CONFIG",
    "load_manifest", "load_pack", "load_packs", "loaded_packs",
    "clear_packs", "discover_pack_dirs", "project_pack_dirs",
]
