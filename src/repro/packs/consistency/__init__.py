"""The flagship *consistency* checker pack.

This directory is a checker pack, not a Python API: the ``pack.toml``
manifest names the modules, and ``mc-check --pack-dir`` (or the pack
loader) imports them in isolation.  The ``__init__`` exists only so
the pack's files ship inside the wheel; import nothing from here —
load the pack::

    mc-check check fleet.c --pack-dir src/repro/packs/consistency
"""
