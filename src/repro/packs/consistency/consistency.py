"""Cross-artifact consistency checks (the flagship checker pack).

The bug class Kabir/Wang call *metadata drift*: the protocol's message
listing, its handler-table registrations, and the simulator dispatch
config are each maintained by hand, and each can quietly disagree with
the code.  This checker audits every artifact pair:

* **unregistered handler** — a function carries the handler prologue
  (``HANDLER_DEFS``) but appears in no table: the dispatcher can never
  reach it;
* **dead table entry** — a handler-table, message-listing, or dispatch
  registration names a function the checked sources do not define;
* **message-length drift** — the listing declares a handler's message
  length (``message NAME len LEN_x`` in the spec) but no assignment in
  the handler's code ever sets that constant;
* **unknown length constant** — the listing uses a constant the
  machine vocabulary does not define;
* **unregistered dispatch target** — the simulator config dispatches
  to a function the handler table never registered.

All judgements are table-conditional: with no ``--spec`` (every table
empty) the checker is a silent no-op, so loading the pack against an
un-specced run changes nothing — the pack layer's purity guarantee.

Inference follows the ``table-audit`` seed: walk the handler's AST for
the facts (length-constant assignments, prologue calls), then judge
code against table, tolerating mixed data-dependent behaviour — only a
listing that *no* site in the code agrees with is drift.
"""

from __future__ import annotations

from repro.checkers.base import Checker, CheckerResult
from repro.flash import machine
from repro.lang import ast
from repro.lang.source import Location
from repro.lang.unparse import unparse_expr
from repro.metal.runtime import Report
from repro.project import Program


def _len_assignments(function: ast.FunctionDef):
    """``(constant-name, location)`` for every assignment of a length
    constant to the message-length field in ``function``."""
    for node in function.walk():
        if not isinstance(node, ast.Assign) or node.op != "=":
            continue
        if unparse_expr(node.target) != machine.MSG_LEN_LVALUE:
            continue
        if isinstance(node.value, ast.Ident) and \
                node.value.name.startswith("LEN_"):
            yield node.value.name, node.location


def _has_handler_prologue(function: ast.FunctionDef) -> bool:
    return any(isinstance(node, ast.Call)
               and node.callee_name == machine.HANDLER_DEFS
               for node in function.walk())


class ConsistencyChecker(Checker):
    """Protocol listings, handler tables, and simulator config must
    agree with the code they describe."""

    name = "consistency"
    metal_loc = 0
    #: Dead-entry judgements need the whole program's definition set,
    #: so the fleet runs this as one whole-program work item.
    unit_parallel = False

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        info = program.info
        tables_empty = (info is None
                        or (not info.handlers and not info.messages
                            and not getattr(info, "dispatch", {})))
        if tables_empty:
            # No tables, no cross-checks: a loaded-but-unconfigured
            # pack must not change one byte of the run's output.
            return self._finish(result, sink)

        functions = {f.name: f for f in program.functions()}
        anchor = self._anchor(program)
        applied = 0

        # -- code -> tables: unregistered handlers -----------------------
        for name, function in sorted(functions.items()):
            if not _has_handler_prologue(function):
                continue
            applied += 1
            if name not in info.handlers and name not in info.messages:
                sink.add(Report(
                    checker=self.name,
                    message=(f"{name} has a handler prologue "
                             f"({machine.HANDLER_DEFS}) but is not "
                             "registered in any protocol table"),
                    location=function.location, function=name,
                ))

        # -- tables -> code: dead entries --------------------------------
        registrations = [
            ("handler table", sorted(info.handlers)),
            ("message listing", sorted(info.messages)),
            ("dispatch config",
             [info.dispatch[op] for op in sorted(info.dispatch)]),
        ]
        for table, names in registrations:
            for name in names:
                applied += 1
                if name not in functions:
                    sink.add(Report(
                        checker=self.name,
                        message=(f"{table} entry {name} names no function "
                                 "in the checked sources"),
                        location=anchor, function=name,
                    ))

        # -- simulator config vs handler table ---------------------------
        for opcode in sorted(info.dispatch):
            name = info.dispatch[opcode]
            if name in functions and info.handlers \
                    and name not in info.handlers:
                sink.add(Report(
                    checker=self.name,
                    message=(f"dispatch opcode {opcode} runs {name}, "
                             "which the handler table never registered"),
                    location=functions[name].location, function=name,
                ))

        # -- message listing vs code: length drift -----------------------
        for name in sorted(info.messages):
            declared = info.messages[name]
            if declared not in machine.LENGTH_CONSTANTS:
                sink.add(Report(
                    checker=self.name,
                    message=(f"message listing for {name} uses unknown "
                             f"length constant {declared}"),
                    location=anchor, function=name,
                ))
                continue
            function = functions.get(name)
            if function is None:
                continue  # already reported as a dead entry
            assigned = list(_len_assignments(function))
            if assigned and declared not in {c for c, _loc in assigned}:
                constant, location = assigned[0]
                sink.add(Report(
                    checker=self.name,
                    message=(f"message listing says {name} sends "
                             f"{declared} but its code sets "
                             f"{', '.join(sorted({c for c, _ in assigned}))}"),
                    location=location, function=name,
                ))

        result.applied = applied
        return self._finish(result, sink)

    @staticmethod
    def _anchor(program: Program) -> Location:
        """A deterministic location for table-level (no-function)
        diagnostics: line 1 of the first checked unit."""
        filenames = sorted(program.units)
        return Location(filenames[0] if filenames else "<spec>", 1, 1)
