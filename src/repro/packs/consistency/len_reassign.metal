{ #include "flash-includes.h" }
sm len_reassign {
    /* Every way the message-length field can be listed. */
    pat set_nodata = { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
    pat set_word = { HANDLER_GLOBALS(header.nh.len) = LEN_WORD } ;
    pat set_line = { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

    /* Any send consumes the current listing: handlers emitting
     * several messages re-list the length before each send. */
    decl { unsigned } keep, swap, wait, dec, null, type;
    pat send =
        { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { NI_SEND(type, F_DATA, keep, wait, dec, null) }
      | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

    /* Track the last unconsumed length listed on this path.
     * Overriding a default with a *different* length before the send
     * is the normal idiom; listing the *same* length again with no
     * send in between is a redundant duplicate — the residue of a
     * copy-paste or a half-applied metadata change, the same drift
     * class the consistency checker audits in the tables. */
    start:
        set_nodata ==> nodata
      | set_word ==> word
      | set_line ==> line ;

    nodata:
        set_nodata ==>
            { err("message length set to LEN_NODATA twice on one path"); }
      | set_word ==> word
      | set_line ==> line
      | send ==> start ;

    word:
        set_word ==>
            { err("message length set to LEN_WORD twice on one path"); }
      | set_nodata ==> nodata
      | set_line ==> line
      | send ==> start ;

    line:
        set_line ==>
            { err("message length set to LEN_CACHELINE twice on one path"); }
      | set_nodata ==> nodata
      | set_word ==> word
      | send ==> start ;
}
