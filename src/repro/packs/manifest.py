"""Checker-pack manifests: ``pack.toml`` parsing and validation.

A *checker pack* is a directory carrying a ``pack.toml`` manifest plus
the checker implementations it names — Python modules subclassing
:class:`repro.checkers.base.Checker`, textual metal programs, or both:

.. code-block:: toml

    [pack]
    name = "consistency"
    version = "1.0.0"
    description = "Cross-artifact consistency checks"
    engine = ">=1.0"              # repro version constraint

    [pack.checkers]
    python = ["consistency.py"]   # relative to the pack directory
    metal = ["len_reassign.metal"]

Every failure mode — missing manifest, unparseable TOML, a schema
violation, an engine-version mismatch, a listed file that does not
exist — raises :class:`PackError` (a :class:`repro.errors.ReproError`),
which the CLI turns into a structured ``mc-check: pack error:``
line and exit 2.  A malformed pack can never produce a traceback, and
can never silently half-load.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError

__all__ = ["PackError", "PackManifest", "load_manifest", "MANIFEST_NAME"]

#: The manifest file every pack directory must carry.
MANIFEST_NAME = "pack.toml"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")
_VERSION_RE = re.compile(r"^\d+(\.\d+){0,2}$")
_CONSTRAINT_RE = re.compile(r"^(>=|<=|==|<|>)\s*(\d+(?:\.\d+){0,2})$")


class PackError(ReproError):
    """A checker pack cannot be loaded (manifest, engine, or content)."""


@dataclass(frozen=True)
class PackManifest:
    """One validated ``pack.toml``."""

    name: str
    version: str
    root: Path
    #: Engine (repro) version constraint, e.g. ``">=1.0, <2"``; empty
    #: means "any engine".
    engine: str = ""
    description: str = ""
    #: Python checker modules, relative to :attr:`root`.
    python_checkers: tuple = ()
    #: Textual metal programs, relative to :attr:`root`.
    metal_checkers: tuple = ()

    @property
    def label(self) -> str:
        """``name@version`` — the identity used in diagnostics, cache
        keys, and report provenance."""
        return f"{self.name}@{self.version}"

    def checker_paths(self) -> list[Path]:
        return [self.root / rel
                for rel in (*self.python_checkers, *self.metal_checkers)]


# -- TOML parsing ------------------------------------------------------------

def _parse_toml(text: str, where: str) -> dict:
    """Parse manifest TOML, via :mod:`tomllib` when available.

    Python 3.10 has no ``tomllib`` and this repo adds no dependencies,
    so a fallback parser covers the manifest subset (tables, string
    values, arrays of strings).  Anything outside that subset is a
    manifest error, not a crash.
    """
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text, where)
    try:
        return tomllib.loads(text)
    except (tomllib.TOMLDecodeError, ValueError) as exc:
        raise PackError(f"{where}: not valid TOML: {exc}") from None


def _parse_toml_subset(text: str, where: str) -> dict:
    """Minimal TOML-subset parser for ``pack.toml`` on Python 3.10."""
    doc: dict = {}
    table = doc
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        at = f"{where}:{lineno}"
        if line.startswith("["):
            if not line.endswith("]"):
                raise PackError(f"{at}: malformed table header {line!r}")
            table = doc
            for part in line[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise PackError(f"{at}: malformed table header {line!r}")
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise PackError(f"{at}: {part!r} is not a table")
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise PackError(f"{at}: expected 'key = value', got {line!r}")
        table[key.strip()] = _parse_toml_value(value.strip(), at)
    return doc


def _parse_toml_value(value: str, at: str):
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        return value[1:-1]
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        items = []
        for piece in inner.split(","):
            piece = piece.strip()
            if not piece:
                continue
            if not (piece.startswith('"') and piece.endswith('"')):
                raise PackError(f"{at}: array items must be strings")
            items.append(piece[1:-1])
        return items
    raise PackError(f"{at}: unsupported value {value!r} "
                    "(strings and string arrays only)")


# -- engine-version constraints ----------------------------------------------

def _version_tuple(text: str) -> tuple:
    return tuple(int(part) for part in text.split("."))


def check_engine_constraint(constraint: str, engine_version: str,
                            where: str = "pack.toml") -> None:
    """Raise :class:`PackError` when ``engine_version`` violates the
    manifest's ``engine`` constraint (comma-separated comparators)."""
    if not constraint.strip():
        return
    have = _version_tuple(engine_version)
    for clause in constraint.split(","):
        clause = clause.strip()
        if not clause:
            continue
        match = _CONSTRAINT_RE.match(clause)
        if match is None:
            raise PackError(
                f"{where}: bad engine constraint {clause!r} "
                "(want e.g. '>=1.0' or '>=1.0, <2')")
        op, version = match.groups()
        want = _version_tuple(version)
        # Compare on the constraint's own precision: ">=1.0" accepts 1.0.3.
        trimmed = have[:len(want)]
        ok = {
            ">=": trimmed >= want, "<=": trimmed <= want,
            "==": trimmed == want, "<": trimmed < want, ">": trimmed > want,
        }[op]
        if not ok:
            raise PackError(
                f"{where}: pack requires engine {constraint!r} but this "
                f"is mc-check {engine_version}")


# -- loading -----------------------------------------------------------------

def load_manifest(pack_dir) -> PackManifest:
    """Read and validate ``<pack_dir>/pack.toml``.

    Checks the manifest schema, the engine-version constraint against
    the running :data:`repro.__version__`, and that every listed checker
    file exists.  All failures are :class:`PackError`.
    """
    root = Path(pack_dir)
    path = root / MANIFEST_NAME
    where = str(path)
    if not root.is_dir():
        raise PackError(f"{root}: not a pack directory")
    try:
        text = path.read_text()
    except OSError as exc:
        raise PackError(
            f"{root}: no readable {MANIFEST_NAME} ({exc})") from None
    doc = _parse_toml(text, where)
    pack = doc.get("pack")
    if not isinstance(pack, dict):
        raise PackError(f"{where}: missing [pack] table")
    name = pack.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name or ""):
        raise PackError(
            f"{where}: [pack] name must be a lowercase identifier "
            f"(got {name!r})")
    version = pack.get("version")
    if not isinstance(version, str) or not _VERSION_RE.match(version or ""):
        raise PackError(
            f"{where}: [pack] version must look like '1.0.0' "
            f"(got {version!r})")
    engine = pack.get("engine", "")
    if not isinstance(engine, str):
        raise PackError(f"{where}: [pack] engine must be a string")
    description = pack.get("description", "")
    if not isinstance(description, str):
        raise PackError(f"{where}: [pack] description must be a string")
    checkers = pack.get("checkers", {})
    if not isinstance(checkers, dict):
        raise PackError(f"{where}: [pack.checkers] must be a table")
    python = _string_list(checkers.get("python", []), where,
                          "[pack.checkers] python")
    metal = _string_list(checkers.get("metal", []), where,
                         "[pack.checkers] metal")
    if not python and not metal:
        raise PackError(
            f"{where}: pack lists no checkers "
            "([pack.checkers] python/metal are both empty)")
    import repro
    check_engine_constraint(engine, repro.__version__, where=where)
    manifest = PackManifest(
        name=name, version=version, root=root, engine=engine,
        description=description,
        python_checkers=tuple(python), metal_checkers=tuple(metal),
    )
    for rel, item in ((rel, root / rel) for rel in (*python, *metal)):
        if not item.is_file():
            raise PackError(
                f"{where}: listed checker {rel!r} does not exist")
    return manifest


def _string_list(value, where: str, what: str) -> list[str]:
    if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value):
        raise PackError(f"{where}: {what} must be a list of file names")
    return list(value)
