"""Dominator analysis over CFGs.

Classic iterative dominator computation (Cooper-Harvey-Kennedy).  Used
by the MC transformation pass (:mod:`repro.mc.transform`): an event
dominated by an equivalent earlier event is a candidate for removal —
e.g. a ``WAIT_FOR_DB_FULL`` every path has already performed.
"""

from __future__ import annotations

from typing import Optional

from .graph import BasicBlock, Cfg


class DominatorTree:
    """Immediate dominators for every reachable block of a CFG."""

    def __init__(self, cfg: Cfg):
        self.cfg = cfg
        self._rpo = self._reverse_postorder()
        self._index = {b.index: i for i, b in enumerate(self._rpo)}
        self.idom: dict[int, Optional[int]] = {}
        self._compute()

    def _reverse_postorder(self) -> list[BasicBlock]:
        visited: set[int] = set()
        postorder: list[BasicBlock] = []
        stack: list[tuple[BasicBlock, int]] = [(self.cfg.entry, 0)]
        visited.add(self.cfg.entry.index)
        while stack:
            block, edge_i = stack[-1]
            if edge_i < len(block.out_edges):
                stack[-1] = (block, edge_i + 1)
                succ = block.out_edges[edge_i].dst
                if succ.index not in visited:
                    visited.add(succ.index)
                    stack.append((succ, 0))
            else:
                postorder.append(block)
                stack.pop()
        return list(reversed(postorder))

    def _compute(self) -> None:
        entry = self.cfg.entry.index
        self.idom = {entry: entry}
        changed = True
        blocks_by_index = {b.index: b for b in self._rpo}
        while changed:
            changed = False
            for block in self._rpo:
                if block.index == entry:
                    continue
                new_idom: Optional[int] = None
                for pred in block.predecessors:
                    if pred.index not in self.idom:
                        continue
                    if pred.index not in self._index:
                        continue
                    if new_idom is None:
                        new_idom = pred.index
                    else:
                        new_idom = self._intersect(new_idom, pred.index)
                if new_idom is not None and self.idom.get(block.index) != new_idom:
                    self.idom[block.index] = new_idom
                    changed = True

    def _intersect(self, a: int, b: int) -> int:
        while a != b:
            while self._index[a] > self._index[b]:
                a = self.idom[a]
            while self._index[b] > self._index[a]:
                b = self.idom[b]
        return a

    # -- queries -------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?  (Reflexive.)"""
        if a not in self.idom or b not in self.idom:
            return False
        entry = self.cfg.entry.index
        node = b
        while True:
            if node == a:
                return True
            if node == entry:
                return a == entry
            node = self.idom[node]

    def immediate_dominator(self, block_index: int) -> Optional[int]:
        if block_index == self.cfg.entry.index:
            return None
        return self.idom.get(block_index)

    def dominators_of(self, block_index: int) -> list[int]:
        """All dominators of a block, innermost first."""
        if block_index not in self.idom:
            return []
        out = [block_index]
        entry = self.cfg.entry.index
        node = block_index
        while node != entry:
            node = self.idom[node]
            out.append(node)
        return out


def compute_dominators(cfg: Cfg) -> DominatorTree:
    """Build the dominator tree of ``cfg``."""
    return DominatorTree(cfg)
