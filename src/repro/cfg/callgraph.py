"""Inter-procedural support: annotated flow graphs and the global call graph.

xg++ did not integrate global analysis with the SM framework; instead it
let extensions *emit client-annotated flow graphs to a file*, then *link
them together into a global call graph* and traverse that (paper §3.2 and
§7).  This module reproduces that workflow:

- :func:`emit_flowgraph` serializes one function's CFG plus client
  annotations to a JSON-able dict (and optionally a file);
- :func:`load_flowgraph` reads one back;
- :class:`CallGraph` links a set of flow graphs, exposes callees/callers,
  and builds a :mod:`networkx` digraph for cycle/SCC queries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

import networkx as nx

from ..lang import ast
from .graph import Cfg


@dataclass
class FlowNode:
    """One basic block in an emitted flow graph.

    ``events`` holds one entry per original CFG event: the call target name
    for calls (or None), plus whatever annotation the client attached.
    """

    index: int
    calls: list[Optional[str]] = field(default_factory=list)
    annotations: list[Optional[dict]] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    lines: list[int] = field(default_factory=list)


@dataclass
class FlowGraph:
    """A serializable, client-annotated CFG for one function."""

    function: str
    filename: str
    entry: int
    exit: int
    nodes: dict[int, FlowNode] = field(default_factory=dict)

    def callees(self) -> set[str]:
        return {
            name
            for node in self.nodes.values()
            for name in node.calls
            if name is not None
        }

    def to_json(self) -> dict:
        return {
            "function": self.function,
            "filename": self.filename,
            "entry": self.entry,
            "exit": self.exit,
            "nodes": [
                {
                    "index": node.index,
                    "calls": node.calls,
                    "annotations": node.annotations,
                    "successors": node.successors,
                    "lines": node.lines,
                }
                for node in self.nodes.values()
            ],
        }

    @staticmethod
    def from_json(data: dict) -> "FlowGraph":
        graph = FlowGraph(
            function=data["function"],
            filename=data["filename"],
            entry=data["entry"],
            exit=data["exit"],
        )
        for node in data["nodes"]:
            graph.nodes[node["index"]] = FlowNode(
                index=node["index"],
                calls=list(node["calls"]),
                annotations=list(node["annotations"]),
                successors=list(node["successors"]),
                lines=list(node["lines"]),
            )
        return graph


def _call_targets(event: ast.Node) -> list[str]:
    """All direct-call target names inside one event, in source order."""
    return [
        node.callee_name
        for node in event.walk()
        if isinstance(node, ast.Call) and node.callee_name is not None
    ]


def emit_flowgraph(cfg: Cfg, annotate=None, filename: str = "") -> FlowGraph:
    """Emit ``cfg`` as an annotated flow graph.

    ``annotate`` is the client hook: called as ``annotate(event)`` for each
    event and may return a JSON-able dict to attach (the lane checker
    attaches ``{"sends": [lane, ...]}``), or None.
    """
    graph = FlowGraph(
        function=cfg.name,
        filename=filename or cfg.function.location.filename,
        entry=cfg.entry.index,
        exit=cfg.exit.index,
    )
    for block in cfg.blocks:
        node = FlowNode(index=block.index)
        for event in block.events:
            targets = _call_targets(event)
            node.calls.append(targets[0] if len(targets) == 1 else None)
            if len(targets) > 1:
                # Multiple calls in one event: keep them all via annotation.
                node.annotations.append({"calls": targets})
            else:
                node.annotations.append(None)
            if annotate is not None:
                extra = annotate(event)
                if extra is not None:
                    merged = node.annotations[-1] or {}
                    merged.update(extra)
                    node.annotations[-1] = merged
            node.lines.append(event.location.line)
        node.successors = [e.dst.index for e in block.out_edges]
        graph.nodes[block.index] = node
    return graph


def write_flowgraph(graph: FlowGraph, path: Path) -> None:
    path.write_text(json.dumps(graph.to_json(), indent=1))


def load_flowgraph(path: Path) -> FlowGraph:
    return FlowGraph.from_json(json.loads(path.read_text()))


class CallGraph:
    """Linked set of flow graphs for a whole protocol."""

    def __init__(self, graphs: Iterable[FlowGraph]):
        self.graphs: dict[str, FlowGraph] = {}
        for graph in graphs:
            self.graphs[graph.function] = graph
        self.nx = nx.DiGraph()
        for name, graph in self.graphs.items():
            self.nx.add_node(name)
            for callee in graph.callees():
                if callee in self.graphs:
                    self.nx.add_edge(name, callee)

    @staticmethod
    def from_files(paths: Iterable[Path]) -> "CallGraph":
        return CallGraph(load_flowgraph(p) for p in paths)

    @staticmethod
    def from_cfgs(cfgs: Iterable[Cfg], annotate=None) -> "CallGraph":
        return CallGraph(emit_flowgraph(cfg, annotate=annotate) for cfg in cfgs)

    def __contains__(self, name: str) -> bool:
        return name in self.graphs

    def __getitem__(self, name: str) -> FlowGraph:
        return self.graphs[name]

    def callees(self, name: str) -> set[str]:
        if name not in self.nx:
            return set()
        return set(self.nx.successors(name))

    def callers(self, name: str) -> set[str]:
        if name not in self.nx:
            return set()
        return set(self.nx.predecessors(name))

    def recursive_functions(self) -> set[str]:
        """Functions involved in any call cycle (including self-recursion)."""
        result: set[str] = set()
        for scc in nx.strongly_connected_components(self.nx):
            if len(scc) > 1:
                result |= scc
            else:
                (only,) = scc
                if self.nx.has_edge(only, only):
                    result.add(only)
        return result

    def reachable_from(self, name: str) -> set[str]:
        if name not in self.nx:
            return set()
        return set(nx.descendants(self.nx, name)) | {name}
