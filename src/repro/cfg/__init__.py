"""Control-flow layer: CFG construction, path statistics, call graphs."""

from .builder import CfgBuilder, build_cfg
from .dominators import DominatorTree, compute_dominators
from .callgraph import (
    CallGraph,
    FlowGraph,
    FlowNode,
    emit_flowgraph,
    load_flowgraph,
    write_flowgraph,
)
from .graph import BasicBlock, Cfg, Edge
from .paths import FileStats, PathStats, aggregate_stats, enumerate_paths, path_stats

__all__ = [
    "CfgBuilder", "build_cfg",
    "DominatorTree", "compute_dominators",
    "CallGraph", "FlowGraph", "FlowNode",
    "emit_flowgraph", "load_flowgraph", "write_flowgraph",
    "BasicBlock", "Cfg", "Edge",
    "FileStats", "PathStats", "aggregate_stats", "enumerate_paths", "path_stats",
]
