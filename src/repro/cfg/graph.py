"""Control-flow graph data structures.

A :class:`Cfg` is a set of :class:`BasicBlock` nodes with labelled edges.
Each block holds an ordered list of *events* — the AST nodes executed in
that block (statement expressions, declarations, branch conditions,
returns).  The metal engine replays a state machine over these events in
path order, which is exactly how xg++ applied extensions "down every path
in each function".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lang import ast


@dataclass
class Edge:
    """A directed CFG edge with an optional label (``true``/``false``/``case``)."""

    src: "BasicBlock"
    dst: "BasicBlock"
    label: Optional[str] = None

    def __repr__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"B{self.src.index}->B{self.dst.index}{tag}"


@dataclass
class BasicBlock:
    """A straight-line run of events with branching only at the end."""

    index: int
    events: list[ast.Node] = field(default_factory=list)
    out_edges: list[Edge] = field(default_factory=list)
    in_edges: list[Edge] = field(default_factory=list)
    # Human-readable role for debugging ("entry", "exit", "then", "loop-head", ...)
    note: str = ""

    @property
    def successors(self) -> list["BasicBlock"]:
        return [e.dst for e in self.out_edges]

    @property
    def predecessors(self) -> list["BasicBlock"]:
        return [e.src for e in self.in_edges]

    def add_event(self, node: ast.Node) -> None:
        self.events.append(node)

    def __repr__(self) -> str:
        note = f" ({self.note})" if self.note else ""
        return f"<B{self.index}{note} events={len(self.events)} succ={[b.index for b in self.successors]}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


class Cfg:
    """Control-flow graph of one function."""

    def __init__(self, function: ast.FunctionDef):
        self.function = function
        self.blocks: list[BasicBlock] = []
        self.entry = self.new_block(note="entry")
        self.exit = self.new_block(note="exit")

    @property
    def name(self) -> str:
        return self.function.name

    def new_block(self, note: str = "") -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), note=note)
        self.blocks.append(block)
        return block

    def connect(self, src: BasicBlock, dst: BasicBlock,
                label: Optional[str] = None) -> Edge:
        edge = Edge(src, dst, label)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        return edge

    def reachable_blocks(self) -> list[BasicBlock]:
        """Blocks reachable from entry, in discovery order."""
        seen: set[int] = set()
        order: list[BasicBlock] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.index in seen:
                continue
            seen.add(block.index)
            order.append(block)
            for succ in reversed(block.successors):
                stack.append(succ)
        return order

    def back_edges(self) -> set[tuple[int, int]]:
        """Edges (src, dst) that close a cycle, found by iterative DFS."""
        result: set[tuple[int, int]] = set()
        color: dict[int, int] = {}  # 0 absent, 1 on stack, 2 done
        stack: list[tuple[BasicBlock, int]] = [(self.entry, 0)]
        color[self.entry.index] = 1
        while stack:
            block, edge_i = stack[-1]
            if edge_i < len(block.out_edges):
                stack[-1] = (block, edge_i + 1)
                succ = block.out_edges[edge_i].dst
                state = color.get(succ.index, 0)
                if state == 1:
                    result.add((block.index, succ.index))
                elif state == 0:
                    color[succ.index] = 1
                    stack.append((succ, 0))
            else:
                color[block.index] = 2
                stack.pop()
        return result

    def events(self) -> Iterator[ast.Node]:
        """All events in all reachable blocks (block order, not path order)."""
        for block in self.reachable_blocks():
            yield from block.events

    def __repr__(self) -> str:
        return f"<Cfg {self.name!r} blocks={len(self.blocks)}>"
