"""AST -> CFG lowering.

The builder translates structured control flow (if/while/do/for/switch)
plus goto/label/break/continue/return into basic blocks.  Branch
conditions are recorded as events in the block that evaluates them, so
checkers can pattern-match conditions as well as statements; the out
edges of the evaluating block carry ``true``/``false`` labels.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CfgError
from ..lang import ast
from .graph import BasicBlock, Cfg


class _LoopContext:
    def __init__(self, break_target: BasicBlock, continue_target: Optional[BasicBlock]):
        self.break_target = break_target
        self.continue_target = continue_target


class CfgBuilder:
    """Builds the CFG of a single function definition."""

    def __init__(self, function: ast.FunctionDef):
        self.cfg = Cfg(function)
        self._loops: list[_LoopContext] = []
        self._labels: dict[str, BasicBlock] = {}
        self._pending_gotos: list[tuple[BasicBlock, str]] = []
        # Switch lowering needs the innermost switch's break target only;
        # that is handled through _LoopContext with continue_target=None.

    def build(self) -> Cfg:
        cfg = self.cfg
        body_end = self._lower_stmt(cfg.function.body, cfg.entry)
        if body_end is not None:
            cfg.connect(body_end, cfg.exit, label="fallthrough")
        for block, label in self._pending_gotos:
            target = self._labels.get(label)
            if target is None:
                raise CfgError(
                    f"goto to undefined label {label!r} in {cfg.name}"
                )
            cfg.connect(block, target, label="goto")
        return cfg

    # -- statement lowering ---------------------------------------------------
    #
    # Each _lower_* takes the current block and returns the block control
    # falls out of, or None when the statement never falls through
    # (return/break/continue/goto).

    def _lower_stmt(self, stmt: ast.Stmt, block: Optional[BasicBlock]):
        if block is None:
            # Unreachable code after return/break; give it its own block so
            # checkers can still see it, but leave it disconnected.
            block = self.cfg.new_block(note="unreachable")
        handler = {
            ast.Block: self._lower_block,
            ast.ExprStmt: self._lower_simple,
            ast.DeclStmt: self._lower_simple,
            ast.EmptyStmt: self._lower_empty,
            ast.If: self._lower_if,
            ast.While: self._lower_while,
            ast.DoWhile: self._lower_do_while,
            ast.For: self._lower_for,
            ast.Switch: self._lower_switch,
            ast.Return: self._lower_return,
            ast.Break: self._lower_break,
            ast.Continue: self._lower_continue,
            ast.Goto: self._lower_goto,
            ast.Label: self._lower_label,
            ast.Case: self._lower_empty,
            ast.Default: self._lower_empty,
            # Tolerant frontend: an unparseable region becomes one
            # ordinary event, which the feasibility layer havocs over
            # and the engine treats as path-poisoning.
            ast.OpaqueStmt: self._lower_simple,
        }.get(type(stmt))
        if handler is None:
            raise CfgError(f"cannot lower statement {type(stmt).__name__}")
        return handler(stmt, block)

    def _lower_block(self, stmt: ast.Block, block: BasicBlock):
        current: Optional[BasicBlock] = block
        for child in stmt.stmts:
            current = self._lower_stmt(child, current)
        return current

    def _lower_simple(self, stmt, block: BasicBlock):
        if isinstance(stmt, ast.ExprStmt):
            block.add_event(stmt.expr)
        else:
            block.add_event(stmt)
        return block

    def _lower_empty(self, stmt, block: BasicBlock):
        return block

    def _lower_cond(self, cond: ast.Expr, block: BasicBlock):
        """Lower a branch condition, decomposing short-circuit ``&&``/``||``.

        Each conjunct becomes its own branch event in its own block, so
        edge labels carry per-conjunct truth — what both the pattern
        matcher and the feasibility layer need — instead of one opaque
        compound event.  Returns ``(true_sources, false_sources)``: the
        blocks whose pending ``true``/``false`` out-edges the caller
        must connect.  An atomic condition adds one event to ``block``
        and returns ``([block], [block])``, reproducing the historical
        lowering exactly (same blocks, same edge order).  Negations are
        not decomposed: ``!(a && b)`` stays one atomic event.
        """
        if isinstance(cond, ast.BinaryOp) and cond.op in ("&&", "||"):
            left_true, left_false = self._lower_cond(cond.left, block)
            rest = self.cfg.new_block(note="cond")
            if cond.op == "&&":
                for src in left_true:
                    self.cfg.connect(src, rest, label="true")
                right_true, right_false = self._lower_cond(cond.right, rest)
                return right_true, left_false + right_false
            for src in left_false:
                self.cfg.connect(src, rest, label="false")
            right_true, right_false = self._lower_cond(cond.right, rest)
            return left_true + right_true, right_false
        block.add_event(cond)
        return [block], [block]

    def _lower_if(self, stmt: ast.If, block: BasicBlock):
        cfg = self.cfg
        true_srcs, false_srcs = self._lower_cond(stmt.cond, block)
        then_block = cfg.new_block(note="then")
        for src in true_srcs:
            cfg.connect(src, then_block, label="true")
        then_end = self._lower_stmt(stmt.then, then_block)
        join = cfg.new_block(note="join")
        if stmt.otherwise is not None:
            else_block = cfg.new_block(note="else")
            for src in false_srcs:
                cfg.connect(src, else_block, label="false")
            else_end = self._lower_stmt(stmt.otherwise, else_block)
            if else_end is not None:
                cfg.connect(else_end, join)
        else:
            for src in false_srcs:
                cfg.connect(src, join, label="false")
        if then_end is not None:
            cfg.connect(then_end, join)
        if not join.in_edges:
            return None
        return join

    def _lower_while(self, stmt: ast.While, block: BasicBlock):
        cfg = self.cfg
        head = cfg.new_block(note="loop-head")
        cfg.connect(block, head)
        true_srcs, false_srcs = self._lower_cond(stmt.cond, head)
        body = cfg.new_block(note="loop-body")
        after = cfg.new_block(note="loop-exit")
        for src in true_srcs:
            cfg.connect(src, body, label="true")
        for src in false_srcs:
            cfg.connect(src, after, label="false")
        self._loops.append(_LoopContext(after, head))
        body_end = self._lower_stmt(stmt.body, body)
        self._loops.pop()
        if body_end is not None:
            cfg.connect(body_end, head, label="back")
        return after

    def _lower_do_while(self, stmt: ast.DoWhile, block: BasicBlock):
        cfg = self.cfg
        body = cfg.new_block(note="loop-body")
        cfg.connect(block, body)
        cond_block = cfg.new_block(note="loop-cond")
        after = cfg.new_block(note="loop-exit")
        self._loops.append(_LoopContext(after, cond_block))
        body_end = self._lower_stmt(stmt.body, body)
        self._loops.pop()
        if body_end is not None:
            cfg.connect(body_end, cond_block)
        true_srcs, false_srcs = self._lower_cond(stmt.cond, cond_block)
        # The repeat edge keeps its historical "back" label, so the
        # branch/feasibility hooks (which fire on true/false only) stay
        # conservative across loop repeats.
        for src in true_srcs:
            cfg.connect(src, body, label="back")
        for src in false_srcs:
            cfg.connect(src, after, label="false")
        return after

    def _lower_for(self, stmt: ast.For, block: BasicBlock):
        cfg = self.cfg
        if isinstance(stmt.init, ast.DeclStmt):
            block.add_event(stmt.init)
        elif isinstance(stmt.init, ast.Expr):
            block.add_event(stmt.init)
        head = cfg.new_block(note="loop-head")
        cfg.connect(block, head)
        true_srcs = false_srcs = [head]
        if stmt.cond is not None:
            true_srcs, false_srcs = self._lower_cond(stmt.cond, head)
        body = cfg.new_block(note="loop-body")
        after = cfg.new_block(note="loop-exit")
        for src in true_srcs:
            cfg.connect(src, body, label="true")
        if stmt.cond is not None:
            for src in false_srcs:
                cfg.connect(src, after, label="false")
        step_block = cfg.new_block(note="loop-step")
        if stmt.step is not None:
            step_block.add_event(stmt.step)
        self._loops.append(_LoopContext(after, step_block))
        body_end = self._lower_stmt(stmt.body, body)
        self._loops.pop()
        if body_end is not None:
            cfg.connect(body_end, step_block)
        cfg.connect(step_block, head, label="back")
        if stmt.cond is None and not after.in_edges:
            # ``for(;;)`` with no break would make ``after`` unreachable;
            # callers treat a None return as no-fallthrough.
            return None
        return after

    def _lower_switch(self, stmt: ast.Switch, block: BasicBlock):
        cfg = self.cfg
        block.add_event(stmt.cond)
        after = cfg.new_block(note="switch-exit")
        self._loops.append(_LoopContext(after, None))
        current: Optional[BasicBlock] = None
        saw_default = False
        for child in stmt.body.stmts:
            if isinstance(child, (ast.Case, ast.Default)):
                arm = cfg.new_block(note="case")
                label = "default" if isinstance(child, ast.Default) else "case"
                saw_default = saw_default or isinstance(child, ast.Default)
                cfg.connect(block, arm, label=label)
                if current is not None:
                    cfg.connect(current, arm, label="fallthrough")
                current = arm
            else:
                current = self._lower_stmt(child, current)
        self._loops.pop()
        if current is not None:
            cfg.connect(current, after)
        if not saw_default:
            cfg.connect(block, after, label="no-case")
        if not after.in_edges:
            return None
        return after

    def _lower_return(self, stmt: ast.Return, block: BasicBlock):
        block.add_event(stmt)
        self.cfg.connect(block, self.cfg.exit, label="return")
        return None

    def _lower_break(self, stmt: ast.Break, block: BasicBlock):
        if not self._loops:
            raise CfgError(f"break outside loop/switch in {self.cfg.name}")
        self.cfg.connect(block, self._loops[-1].break_target, label="break")
        return None

    def _lower_continue(self, stmt: ast.Continue, block: BasicBlock):
        target = None
        for loop in reversed(self._loops):
            if loop.continue_target is not None:
                target = loop.continue_target
                break
        if target is None:
            raise CfgError(f"continue outside loop in {self.cfg.name}")
        self.cfg.connect(block, target, label="continue")
        return None

    def _lower_goto(self, stmt: ast.Goto, block: BasicBlock):
        self._pending_gotos.append((block, stmt.label))
        return None

    def _lower_label(self, stmt: ast.Label, block: BasicBlock):
        target = self.cfg.new_block(note=f"label:{stmt.name}")
        self._labels[stmt.name] = target
        self.cfg.connect(block, target)
        return target


def build_cfg(function: ast.FunctionDef) -> Cfg:
    """Build the control-flow graph of one function definition."""
    return CfgBuilder(function).build()
