"""Path counting and statistics over CFGs (Table 1 of the paper).

The paper characterizes each protocol by the number of unique exit paths
through every function and the average/max path length in source lines.
Loops are handled the way any terminating static traversal must: back
edges are excluded, so a loop body contributes "taken once or not at all",
matching the path counts a DFS-with-state-caching engine explores.

Counting uses dynamic programming over the acyclic subgraph, so functions
with thousands of paths are measured without enumerating them.  Bounded
explicit enumeration is also provided for tests and for the naive-engine
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..lang import ast
from .graph import BasicBlock, Cfg


def _block_lines(block: BasicBlock) -> int:
    """Number of distinct source lines this block's events span."""
    lines = {
        event.location.line
        for event in block.events
        if event.location.line > 0
    }
    return len(lines)


@dataclass(frozen=True)
class PathStats:
    """Per-function path statistics."""

    function: str
    path_count: int
    total_length: int
    max_length: int

    @property
    def average_length(self) -> float:
        if self.path_count == 0:
            return 0.0
        return self.total_length / self.path_count


def path_stats(cfg: Cfg) -> PathStats:
    """Count entry->exit paths and their length statistics via DP."""
    back = cfg.back_edges()
    reachable = cfg.reachable_blocks()
    order = _topo_order(cfg, reachable, back)

    counts: dict[int, int] = {}
    sums: dict[int, int] = {}
    maxes: dict[int, int] = {}
    for block in reversed(order):
        lines = _block_lines(block)
        succs = [
            e.dst for e in block.out_edges
            if (block.index, e.dst.index) not in back
        ]
        if block is cfg.exit or not succs:
            counts[block.index] = 1
            sums[block.index] = lines
            maxes[block.index] = lines
            continue
        count = 0
        total = 0
        longest = 0
        for succ in succs:
            count += counts[succ.index]
            total += sums[succ.index]
            longest = max(longest, maxes[succ.index])
        counts[block.index] = count
        sums[block.index] = lines * count + total
        maxes[block.index] = lines + longest
    entry = cfg.entry.index
    return PathStats(
        function=cfg.name,
        path_count=counts.get(entry, 0),
        total_length=sums.get(entry, 0),
        max_length=maxes.get(entry, 0),
    )


def _topo_order(cfg: Cfg, reachable: list[BasicBlock],
                back: set[tuple[int, int]]) -> list[BasicBlock]:
    """Topological order of the reachable acyclic subgraph."""
    reachable_ids = {b.index for b in reachable}
    indegree: dict[int, int] = {b.index: 0 for b in reachable}
    for block in reachable:
        for edge in block.out_edges:
            key = (block.index, edge.dst.index)
            if key in back or edge.dst.index not in reachable_ids:
                continue
            indegree[edge.dst.index] += 1
    by_index = {b.index: b for b in reachable}
    ready = [b for b in reachable if indegree[b.index] == 0]
    order: list[BasicBlock] = []
    while ready:
        block = ready.pop()
        order.append(block)
        for edge in block.out_edges:
            key = (block.index, edge.dst.index)
            if key in back or edge.dst.index not in reachable_ids:
                continue
            indegree[edge.dst.index] -= 1
            if indegree[edge.dst.index] == 0:
                ready.append(by_index[edge.dst.index])
    return order


def enumerate_paths(cfg: Cfg, max_paths: Optional[int] = 10000) -> Iterator[list[BasicBlock]]:
    """Explicitly enumerate entry->exit block paths (back edges skipped).

    Used by tests (to validate the DP counts) and by the naive-engine
    ablation.  Raises ``ValueError`` if the function has more than
    ``max_paths`` paths (pass ``None`` to disable the guard).
    """
    back = cfg.back_edges()
    produced = 0
    stack: list[tuple[BasicBlock, list[BasicBlock]]] = [(cfg.entry, [cfg.entry])]
    while stack:
        block, path = stack.pop()
        succs = [
            e.dst for e in block.out_edges
            if (block.index, e.dst.index) not in back
        ]
        if block is cfg.exit or not succs:
            produced += 1
            if max_paths is not None and produced > max_paths:
                raise ValueError(
                    f"{cfg.name} has more than {max_paths} paths"
                )
            yield path
            continue
        for succ in reversed(succs):
            stack.append((succ, path + [succ]))


@dataclass(frozen=True)
class FileStats:
    """Aggregated statistics for a set of functions (one protocol)."""

    loc: int
    path_count: int
    average_path_length: float
    max_path_length: int


def aggregate_stats(per_function: list[PathStats], loc: int) -> FileStats:
    """Combine per-function stats the way Table 1 reports them."""
    total_paths = sum(s.path_count for s in per_function)
    total_length = sum(s.total_length for s in per_function)
    max_length = max((s.max_length for s in per_function), default=0)
    average = total_length / total_paths if total_paths else 0.0
    return FileStats(
        loc=loc,
        path_count=total_paths,
        average_path_length=average,
        max_path_length=max_length,
    )
