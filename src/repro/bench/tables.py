"""Regeneration of every table in the paper's evaluation.

:class:`Experiment` runs the whole pipeline once (generate the six
protocol categories, run all nine checkers, join every diagnostic
against the generator's ground-truth manifest) and exposes one method
per table.  Each method returns a :class:`TableResult`: named columns,
one row per protocol (or checker), and paper-vs-measured value pairs so
the benchmark output reads like the paper with our numbers alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg import path_stats
from ..checkers import CheckerResult, run_all
from ..flash.codegen import GeneratedProtocol, generate_all
from ..mc import feasibility as _feasibility
from . import paper_data

#: Checker execution order for Table 7 (the paper's row order).
CHECKER_ORDER = ("buffer-mgmt", "msg-length", "lanes", "buffer-race",
                 "alloc-fail", "directory", "send-wait", "exec-restrict",
                 "no-float")


@dataclass
class Cell:
    """One paper-vs-measured value."""

    paper: float
    measured: float

    @property
    def matches(self) -> bool:
        return self.paper == self.measured

    def __str__(self) -> str:
        def fmt(v: float) -> str:
            return f"{v:g}"
        mark = "" if self.matches else " *"
        return f"{fmt(self.measured)} (paper {fmt(self.paper)}){mark}"


@dataclass
class TableResult:
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)

    def row(self, label: str) -> dict:
        for row in self.rows:
            if row["label"] == label:
                return row
        raise KeyError(label)

    def exact_cells(self) -> tuple[int, int]:
        """(#matching cells, #total cells) across all Cell values."""
        match = total = 0
        for row in self.rows:
            for value in row.values():
                if isinstance(value, Cell):
                    total += 1
                    match += int(value.matches)
        return match, total


@dataclass
class ClassifiedReports:
    """One checker's diagnostics for one protocol, split by ground truth."""

    errors: int = 0
    minor: int = 0
    violations: int = 0
    fps: int = 0
    uncounted: int = 0
    unmatched: int = 0  # reports with no manifest entry: reproduction bugs
    useful_annotations: int = 0
    useless_annotations: int = 0


class Experiment:
    """One full run of the reproduction pipeline."""

    def __init__(self, seed: int = 0xF1A5, feasibility: bool = False):
        self.seed = seed
        # The tables reproduce the *paper's* engine, which had no
        # infeasible-path pruning — its FP rows (the coma idiom, the
        # Table 2 correlated branches) exist precisely because every
        # syntactic path was walked.  ``feasibility=True`` measures the
        # same corpus with pruning on (bench_feasibility_fp.py).
        self.feasibility = feasibility
        self.protocols: Optional[dict[str, GeneratedProtocol]] = None
        self.results: dict[str, dict[str, CheckerResult]] = {}
        self._classified: dict[tuple, ClassifiedReports] = {}

    # -- pipeline -----------------------------------------------------------

    def generate(self) -> dict[str, GeneratedProtocol]:
        if self.protocols is None:
            self.protocols = generate_all(seed=self.seed)
        return self.protocols

    def check(self) -> None:
        """Run every checker over every protocol and classify reports."""
        previous = _feasibility.set_default_enabled(self.feasibility)
        try:
            for name, gp in self.generate().items():
                if name in self.results:
                    continue
                results = run_all(gp.program())
                self.results[name] = results
                self._classify(name, gp, results)
        finally:
            _feasibility.set_default_enabled(previous)

    def _classify(self, proto: str, gp: GeneratedProtocol,
                  results: dict[str, CheckerResult]) -> None:
        bykey = gp.manifest_by_key()
        for cname, result in results.items():
            cls = ClassifiedReports()
            for report in result.reports:
                key = (report.location.filename, report.location.line)
                sites = [s for s in bykey.get(key, ())
                         if s.checker == cname]
                if not sites:
                    cls.unmatched += 1
                    continue
                label = sites[0].label
                if label == "error":
                    cls.errors += 1
                elif label == "minor":
                    cls.minor += 1
                elif label == "violation":
                    cls.violations += 1
                elif label == "fp":
                    cls.fps += 1
                elif label == "uncounted":
                    cls.uncounted += 1
            for loc in result.annotations:
                sites = bykey.get((loc.filename, loc.line), ())
                labels = {s.label for s in sites}
                if "useful-annotation" in labels:
                    cls.useful_annotations += 1
                elif "useless-annotation" in labels:
                    cls.useless_annotations += 1
            self._classified[(proto, cname)] = cls

    def classified(self, proto: str, checker: str) -> ClassifiedReports:
        self.check()
        return self._classified.get((proto, checker), ClassifiedReports())

    # -- tables --------------------------------------------------------------

    def table1(self) -> TableResult:
        table = TableResult(
            "Table 1: protocol size",
            ["label", "loc", "paths", "avg_path", "max_path"],
        )
        for name, gp in self.generate().items():
            prog = gp.program()
            stats = [path_stats(prog.cfg(f)) for f in prog.functions()]
            paths = sum(s.path_count for s in stats)
            total_len = sum(s.total_length for s in stats)
            longest = max((s.max_length for s in stats), default=0)
            avg = round(total_len / paths) if paths else 0
            p = paper_data.TABLE1[name]
            table.rows.append({
                "label": name,
                "loc": Cell(p[0], gp.loc()),
                "paths": Cell(p[1], paths),
                "avg_path": Cell(p[2], avg),
                "max_path": Cell(p[3], longest),
            })
        return table

    def _simple_checker_table(self, title: str, checker: str,
                              paper: dict) -> TableResult:
        self.check()
        table = TableResult(title, ["label", "errors", "false_pos", "applied"])
        for name in paper_data.PROTOCOLS:
            cls = self.classified(name, checker)
            result = self.results[name][checker]
            p = paper[name]
            table.rows.append({
                "label": name,
                "errors": Cell(p[0], cls.errors),
                "false_pos": Cell(p[1], cls.fps),
                "applied": Cell(p[2], result.applied),
            })
        return table

    def table2(self) -> TableResult:
        return self._simple_checker_table(
            "Table 2: buffer race condition checker", "buffer-race",
            paper_data.TABLE2)

    def table3(self) -> TableResult:
        return self._simple_checker_table(
            "Table 3: message length checker", "msg-length",
            paper_data.TABLE3)

    def table4(self) -> TableResult:
        self.check()
        table = TableResult(
            "Table 4: buffer management checker",
            ["label", "errors", "minor", "useful", "useless"],
        )
        for name in paper_data.PROTOCOLS:
            cls = self.classified(name, "buffer-mgmt")
            p = paper_data.TABLE4[name]
            table.rows.append({
                "label": name,
                "errors": Cell(p[0], cls.errors),
                "minor": Cell(p[1], cls.minor),
                "useful": Cell(p[2], cls.useful_annotations),
                "useless": Cell(p[3], cls.useless_annotations),
            })
        return table

    def table_lanes(self) -> TableResult:
        self.check()
        table = TableResult(
            "Section 7: lane deadlock checker",
            ["label", "errors", "false_pos"],
        )
        for name in paper_data.PROTOCOLS:
            cls = self.classified(name, "lanes")
            p = paper_data.LANES[name]
            table.rows.append({
                "label": name,
                "errors": Cell(p[0], cls.errors),
                "false_pos": Cell(p[1], cls.fps + cls.unmatched),
            })
        return table

    def table5(self) -> TableResult:
        self.check()
        table = TableResult(
            "Table 5: execution restriction checker",
            ["label", "violations", "handlers", "vars"],
        )
        for name in paper_data.PROTOCOLS:
            cls = self.classified(name, "exec-restrict")
            result = self.results[name]["exec-restrict"]
            p = paper_data.TABLE5[name]
            table.rows.append({
                "label": name,
                "violations": Cell(p[0], cls.violations),
                "handlers": Cell(p[1], result.extra["handlers_checked"]),
                "vars": Cell(p[2], result.extra["vars_checked"]),
            })
        return table

    def table6(self) -> TableResult:
        self.check()
        table = TableResult(
            "Table 6: buffer allocation, directory, send-wait checkers",
            ["label", "alloc_fp", "alloc_applied", "dir_fp", "dir_applied",
             "swait_fp", "swait_applied"],
        )
        for name in paper_data.PROTOCOLS:
            alloc = self.classified(name, "alloc-fail")
            dirs = self.classified(name, "directory")
            swait = self.classified(name, "send-wait")
            p = paper_data.TABLE6[name]
            table.rows.append({
                "label": name,
                "alloc_fp": Cell(p[0], alloc.fps),
                "alloc_applied": Cell(p[1], self.results[name]["alloc-fail"].applied),
                "dir_fp": Cell(p[2], dirs.fps),
                "dir_applied": Cell(p[3], self.results[name]["directory"].applied),
                "swait_fp": Cell(p[4], swait.fps),
                "swait_applied": Cell(p[5], self.results[name]["send-wait"].applied),
            })
        return table

    def table7(self) -> TableResult:
        self.check()
        from ..checkers import get_checker
        table = TableResult(
            "Table 7: checker summary over all protocols",
            ["label", "metal_loc", "errors", "false_pos"],
        )
        total_errors = total_fps = total_loc = 0
        for cname in CHECKER_ORDER:
            errors = fps = 0
            for proto in paper_data.PROTOCOLS:
                cls = self.classified(proto, cname)
                errors += cls.errors
                if cname == "buffer-mgmt":
                    fps += cls.useless_annotations
                else:
                    fps += cls.fps
            loc = get_checker(cname).metal_loc
            p = paper_data.TABLE7[cname]
            table.rows.append({
                "label": cname,
                "metal_loc": Cell(p[0], loc),
                "errors": Cell(p[1], errors),
                "false_pos": Cell(p[2], fps),
            })
            total_errors += errors
            total_fps += fps
            total_loc += loc
        p = paper_data.TABLE7_TOTALS
        table.rows.append({
            "label": "total",
            "metal_loc": Cell(p[0], total_loc),
            "errors": Cell(p[1], total_errors),
            "false_pos": Cell(p[2], total_fps),
        })
        return table

    def all_tables(self) -> list[TableResult]:
        return [
            self.table1(), self.table2(), self.table3(), self.table4(),
            self.table_lanes(), self.table5(), self.table6(), self.table7(),
        ]

    def unmatched_reports(self) -> int:
        """Diagnostics not in the ground-truth manifest (should be 0)."""
        self.check()
        return sum(c.unmatched for c in self._classified.values())


_SHARED: Optional[Experiment] = None


def shared_experiment() -> Experiment:
    """A module-level Experiment reused across benchmarks in one session."""
    global _SHARED
    if _SHARED is None:
        _SHARED = Experiment()
    return _SHARED
