"""ASCII rendering of benchmark tables (paper vs measured)."""

from __future__ import annotations

from .tables import Cell, TableResult


def render_table(table: TableResult) -> str:
    """Render a TableResult with measured and paper values side by side."""
    headers = ["" if c == "label" else c for c in table.columns]
    body: list[list[str]] = []
    for row in table.rows:
        cells = []
        for column in table.columns:
            value = row[column]
            if isinstance(value, Cell):
                cells.append(str(value))
            else:
                cells.append(str(value))
        body.append(cells)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [table.title, "=" * len(table.title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for cells in body:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip())
    match, total = table.exact_cells()
    lines.append(f"[{match}/{total} cells match the paper exactly; "
                 "* marks differences]")
    return "\n".join(lines)


def render_all(tables: list[TableResult]) -> str:
    return "\n\n".join(render_table(t) for t in tables)
