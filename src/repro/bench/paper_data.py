"""The paper's published numbers, table by table.

Used by the benchmark harness to print paper-vs-measured rows and by
EXPERIMENTS.md generation.  Protocol order follows each table's own
row order in the paper.
"""

from __future__ import annotations

PROTOCOLS = ("bitvector", "dyn_ptr", "sci", "coma", "rac", "common")

#: Table 1 - protocol size: LOC, #paths, average/max path length.
TABLE1 = {
    "bitvector": (10386, 486, 87, 563),
    "dyn_ptr": (18438, 2322, 135, 399),
    "sci": (11473, 1051, 73, 330),
    "coma": (17031, 1131, 135, 244),
    "rac": (14396, 1364, 133, 516),
    "common": (8783, 1165, 183, 461),
}

#: Table 2 - buffer race: errors, false positives, applied.
TABLE2 = {
    "bitvector": (4, 0, 14),
    "dyn_ptr": (0, 0, 16),
    "sci": (0, 0, 2),
    "coma": (0, 0, 0),
    "rac": (0, 0, 10),
    "common": (0, 1, 17),
}

#: Table 3 - message length: errors, false positives, applied.
TABLE3 = {
    "bitvector": (3, 0, 205),
    "dyn_ptr": (7, 0, 316),
    "sci": (0, 0, 308),
    "coma": (0, 2, 302),
    "rac": (8, 0, 346),
    "common": (0, 0, 73),
}

#: Table 4 - buffer management: errors, minor, useful, useless.
TABLE4 = {
    "dyn_ptr": (2, 2, 3, 3),
    "bitvector": (2, 1, 0, 1),
    "sci": (3, 2, 10, 10),
    "coma": (0, 0, 0, 0),
    "rac": (2, 0, 2, 4),
    "common": (0, 1, 3, 7),
}

#: §7 lanes - errors and false positives (given in prose, not a table).
LANES = {
    "bitvector": (1, 0),
    "dyn_ptr": (1, 0),
    "sci": (0, 0),
    "coma": (0, 0),
    "rac": (0, 0),
    "common": (0, 0),
}

#: Table 5 - execution restrictions: violations, handlers, vars.
TABLE5 = {
    "dyn_ptr": (4, 227, 768),
    "bitvector": (2, 168, 489),
    "sci": (0, 214, 794),
    "coma": (3, 193, 648),
    "rac": (2, 200, 668),
    "common": (0, 62, 398),
}

#: Table 6 - the three less-effective checks:
#: (alloc FP, alloc applied, dir FP, dir applied, sw FP, sw applied).
TABLE6 = {
    "bitvector": (0, 17, 3, 214, 2, 32),
    "dyn_ptr": (2, 19, 13, 382, 2, 38),
    "sci": (0, 5, 1, 88, 0, 11),
    "coma": (0, 32, 5, 659, 0, 7),
    "rac": (0, 20, 9, 424, 2, 35),
    "common": (0, 4, 0, 1, 2, 2),
}

#: Table 6 footnote: the directory check found 1 bug, in bitvector.
TABLE6_DIR_ERRORS = {"bitvector": 1}

#: Table 7 - summary per checker: metal LOC, errors, false positives.
#: (Buffer-management "false positives" are the useless annotations.)
TABLE7 = {
    "buffer-mgmt": (94, 9, 25),
    "msg-length": (29, 18, 2),
    "lanes": (220, 2, 0),
    "buffer-race": (12, 4, 1),
    "alloc-fail": (16, 0, 2),
    "directory": (51, 1, 31),
    "send-wait": (40, 0, 8),
    "exec-restrict": (84, 0, 0),
    "no-float": (7, 0, 0),
}

TABLE7_TOTALS = (553, 34, 69)

#: §6's value-sensitivity refinement: "We eliminated over twenty
#: useless annotations by adding twelve lines to the SM to make it
#: sensitive to the value of four routines that ... returned a 0 or 1
#: depending on whether or not they freed a buffer."
SECTION6_FREES_IF_TRUE_ROUTINES = 4
SECTION6_REFINEMENT_LOC = 12
#: "over twenty": the naive cascade must exceed this lower bound.
SECTION6_USELESS_ANNOTATIONS = 20
