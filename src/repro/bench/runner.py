"""Run-all entry point: regenerate every table from the command line.

``python -m repro.bench.runner [--seed N]`` prints all tables
paper-vs-measured (the same output as ``mc-check tables``) plus the
integrity summary the benchmarks assert.
"""

from __future__ import annotations

import argparse
import sys
import time

from .formatting import render_all
from .tables import Experiment


def run(seed: int = 0xF1A5, out=sys.stdout) -> Experiment:
    experiment = Experiment(seed=seed)
    start = time.time()
    experiment.check()
    elapsed = time.time() - start
    out.write(render_all(experiment.all_tables()))
    out.write("\n\n")
    table7 = experiment.table7()
    totals = table7.row("total")
    unmatched = experiment.unmatched_reports()
    out.write(
        f"errors {totals['errors'].measured:g} "
        f"(paper {totals['errors'].paper:g}) | "
        f"false positives {totals['false_pos'].measured:g} "
        f"(paper {totals['false_pos'].paper:g}) | "
        f"diagnostics outside the ground-truth manifest: {unmatched} | "
        f"{elapsed:.1f}s\n"
    )
    return experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables (paper vs measured)")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xF1A5,
                        help="generator seed (default 0xF1A5)")
    args = parser.parse_args(argv)
    experiment = run(seed=args.seed)
    bad = experiment.unmatched_reports()
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
