"""Benchmark harness: regenerates every table in the paper."""

from .formatting import render_all, render_table
from .tables import Cell, Experiment, TableResult, shared_experiment
from . import paper_data

__all__ = ["render_all", "render_table", "Cell", "Experiment",
           "TableResult", "shared_experiment", "paper_data"]
