"""FLASH substrate: machine vocabulary, headers, code generator, simulator."""

from . import machine
from .headers import FLASH_INCLUDES, FLASH_INCLUDES_NAME, with_flash_includes

__all__ = ["machine", "FLASH_INCLUDES", "FLASH_INCLUDES_NAME",
           "with_flash_includes"]
