"""Generation of the five FLASH protocols and the common code.

``generate_protocol(name)`` deterministically synthesizes a protocol
whose structure matches the paper's numbers:

* Table 1 — lines of code, path counts, path lengths (approximately;
  these emerge from the generator's structure);
* Table 5 — routine and variable counts (exactly);
* the "Applied" columns of Tables 2, 3 and 6 — data-buffer reads, send
  sites, allocation sites, directory-operation lines, and send-wait
  operations (exactly);
* the seeded defect catalog of :mod:`repro.flash.codegen.bugs` — every
  error / minor violation / false positive / annotation cell of
  Tables 2-7 (exactly).

Everything is driven by one seeded :class:`random.Random` per protocol,
so generation is reproducible run to run.
"""

from __future__ import annotations

import zlib
from random import Random

from ...project import HandlerInfo, ProtocolInfo
from .builder import LANES, RoutineBuilder
from .bugs import CATALOG, IDIOMS, SeedSpec
from .emit import Emitter
from .model import GeneratedProtocol, ProtocolTargets, SeededSite

#: Structural targets straight from Tables 1, 2, 3, 5 and 6.
TARGETS: dict[str, ProtocolTargets] = {
    "bitvector": ProtocolTargets("bitvector", 10386, 486, 87, 563,
                                 168, 489, 14, 205, 17, 214, 32, 84),
    "dyn_ptr": ProtocolTargets("dyn_ptr", 18438, 2322, 135, 399,
                               227, 768, 16, 316, 19, 382, 38, 88),
    "sci": ProtocolTargets("sci", 11473, 1051, 73, 330,
                           214, 794, 2, 308, 5, 88, 11, 80),
    "coma": ProtocolTargets("coma", 17031, 1131, 135, 244,
                            193, 648, 0, 302, 32, 659, 7, 76),
    "rac": ProtocolTargets("rac", 14396, 1364, 133, 516,
                           200, 668, 10, 346, 20, 424, 35, 82),
    "common": ProtocolTargets("common", 8783, 1165, 183, 461,
                              62, 398, 17, 73, 4, 1, 2, 0),
}

PROTOCOL_NAMES = tuple(TARGETS)

#: send-wait plan per protocol: (pairs, stray waits).  Together with the
#: seeded spin false positives this reproduces Table 6's Applied column:
#: applied = 2*pairs + strays + spin_fps.
_SWAIT_PLAN = {
    "bitvector": (15, 0),   # + 2 spin fps = 32
    "dyn_ptr": (18, 0),     # + 2          = 38
    "sci": (5, 1),          # + 0          = 11
    "coma": (3, 1),         # + 0          = 7
    "rac": (16, 1),         # + 2          = 35
    "common": (0, 0),       # + 2          = 2
}

#: Internal path-target multipliers, calibrated against measured path
#: counts (the static estimate and the DP count diverge; see DESIGN.md).
_PATH_FUDGE = {
    "bitvector": 1.0,
    "dyn_ptr": 1.0,
    "sci": 1.0,
    "coma": 1.0,
    "rac": 1.0,
    "common": 1.0,
}

#: Branch-count range for "complex" routines, per protocol.  Higher
#: ranges concentrate the path budget in fewer, longer routines, which
#: is what raises the average path length toward Table 1's numbers.
_BRANCH_RANGE = {
    "bitvector": (3, 5),
    "dyn_ptr": (5, 7),
    "sci": (3, 5),
    "coma": (4, 6),
    "rac": (4, 6),
    "common": (6, 7),
}

_IFACE_OPS = ("Get", "GetX", "Put", "PutX", "Inval", "InvalAck", "Ack",
              "Nak", "WB", "Replace", "Upgrade", "UncRead", "UncWrite",
              "Intervention", "Sharing", "Flush")


def _handler_names(count: int) -> list[str]:
    names = []
    for op in _IFACE_OPS:
        for iface in ("PI", "NI", "IO"):
            for locality in ("Local", "Remote"):
                names.append(f"{iface}{locality}{op}")
    return names[:count]


def _partition(rng: Random, total: int, bins: int, cap: int = 10**9) -> list[int]:
    """Randomly split ``total`` items into ``bins`` (each <= cap)."""
    counts = [0] * max(bins, 1)
    if bins <= 0:
        return counts
    for _ in range(total):
        for _attempt in range(64):
            i = rng.randrange(bins)
            if counts[i] < cap:
                counts[i] += 1
                break
        else:
            raise ValueError("partition cap too tight")
    return counts


class ProtocolBuilder:
    """Builds one protocol deterministically."""

    def __init__(self, targets: ProtocolTargets, seed: int = 0xF1A5):
        self.t = targets
        # zlib.crc32 is stable across processes (str hash is not).
        self.rng = Random(zlib.crc32(targets.name.encode()) ^ seed)
        self.info = ProtocolInfo(name=targets.name)
        self.manifest: list[SeededSite] = []
        self.emitters: dict[str, Emitter] = {}
        # Structural counters (asserted against targets at the end).
        self.count = {"reads": 0, "sends": 0, "allocs": 0,
                      "dir_lines": 0, "swait_ops": 0, "vars": 0,
                      "routines": 0}
        self.free_helper = f"{targets.name}_forward_and_free"
        self._nostack_count = 0
        self.use_helper = f"{targets.name}_inspect_buffer"
        self.sender_helpers: dict[str, list[int]] = {}

    # -- top level ------------------------------------------------------------

    def build(self) -> GeneratedProtocol:
        t = self.t
        for suffix in ("pi", "ni", "io", "sw", "util"):
            name = f"{t.name}_{suffix}.c"
            emitter = Emitter(name)
            emitter.comment(f"{t.name} protocol - {suffix} handlers "
                            "(generated; see DESIGN.md)")
            emitter.blank()
            self.emitters[name] = emitter

        roster = self._plan_roster()
        self._emit_helpers()
        seed_specs = self._plan_seeds(roster)
        quotas = self._plan_quotas(roster, seed_specs)
        self._emit_seed_routines(seed_specs, quotas)
        self._emit_normal_routines(roster, quotas)
        self._check_counts()
        files = {name: e.text() for name, e in self.emitters.items()}
        return GeneratedProtocol(
            name=t.name, files=files, info=self.info,
            manifest=self.manifest, targets=t,
        )

    # -- planning ---------------------------------------------------------------

    def _plan_roster(self) -> dict:
        t = self.t
        hw = _handler_names(t.hw_handlers)
        sw = [f"SWHandler{op}" for op in
              ("PageMigrate", "TLBFill", "Idle", "Diag", "Flush", "Remap",
               "Stats", "Park")][: (8 if t.hw_handlers else 0)]
        n_seeds = sum(spec.count for spec in CATALOG[t.name])
        n_helpers = self._helper_count()
        n_procs = t.routines - len(hw) - len(sw) - n_helpers
        if n_procs < n_seeds:
            raise ValueError(f"{t.name}: not enough routines for seeds")
        procs = [f"{t.name}_util_{i}" for i in range(n_procs)]
        return {"hw": hw, "sw": sw, "procs": procs}

    def _helper_count(self) -> int:
        # forward_and_free, inspect_buffer, two sender helpers, and a
        # send-free recursive helper (the §7 fixed-point case).
        return 5

    def _plan_seeds(self, roster: dict) -> list[tuple]:
        """Expand the catalog into (spec, idiom, routine-name, kind)."""
        out: list[tuple] = []
        for spec in CATALOG[self.t.name]:
            idiom = IDIOMS[spec.idiom]
            for _ in range(spec.count):
                kind = idiom.kind
                if self.t.name == "common":
                    kind = "proc"
                if kind == "hw":
                    name = roster["hw"].pop()
                elif kind == "sw":
                    name = roster["sw"].pop()
                else:
                    name = roster["procs"].pop()
                out.append((spec, idiom, name, kind))
        return out

    def _plan_quotas(self, roster: dict, seed_specs: list[tuple]) -> dict:
        """Remaining structural quotas after seed idiom consumption."""
        t = self.t
        pairs, strays = _SWAIT_PLAN[t.name]
        q = {
            "reads": t.db_reads,
            "sends": t.sends,
            "allocs": t.allocs,
            "dir_lines": t.dir_ops,
            "swait_pairs": pairs,
            "swait_strays": strays,
        }
        for _spec, idiom, _name, _kind in seed_specs:
            q["reads"] -= idiom.cost.reads
            q["sends"] -= idiom.cost.sends
            q["allocs"] -= idiom.cost.allocs
            q["dir_lines"] -= idiom.cost.dir_lines
        # Helpers consume fixed quotas (see _emit_helpers):
        q["sends"] -= len(self._sender_helper_names())
        # swait pairs consume 2 send-wait ops and 1 send each; strays 1 op.
        q["sends"] -= q["swait_pairs"]
        # Every allocation block embeds one send.
        q["sends"] -= q["allocs"]
        for key, value in q.items():
            if value < 0:
                raise ValueError(f"{t.name}: quota {key} over-consumed "
                                 f"({value})")
        return q

    def _sender_helper_names(self) -> list[str]:
        if self.t.name == "common":
            # Common code is all subroutines; give it more send helpers
            # so its send quota has somewhere realistic to live.
            return [f"common_send_helper_{i}" for i in range(2)]
        return [f"{self.t.name}_send_helper_{i}" for i in range(2)]

    # -- helpers ------------------------------------------------------------------

    def _util_emitter(self) -> Emitter:
        return self.emitters[f"{self.t.name}_util.c"]

    def _emit_helpers(self) -> None:
        e = self._util_emitter()
        rng = self.rng
        # Freeing helper: expects a buffer and frees it.
        rb = RoutineBuilder(e, self.free_helper, "proc", rng, n_vars=2)
        self._count_routine(rb)
        rb.begin()
        rb.has_buffer = True
        rb.filler(2)
        rb.end()  # end() frees the held buffer
        self.info.free_routines.add(self.free_helper)

        # Buffer-expecting helper: uses the buffer, does not free it.
        rb = RoutineBuilder(e, self.use_helper, "proc", rng, n_vars=2)
        self._count_routine(rb)
        rb.begin()
        rb.filler(3)
        rb.end()
        self.info.buffer_use_routines.add(self.use_helper)

        # Sender helpers: one send each; callers account the lane vector.
        for name in self._sender_helper_names():
            rb = RoutineBuilder(e, name, "proc", rng, n_vars=2)
            self._count_routine(rb)
            rb.begin()
            form = rng.choice(("NI_SEND_REQ", "NI_SEND_REPLY"))
            rb.send_block(form=form, flag="F_NODATA")
            self.count["sends"] += 1
            rb.end()
            self.sender_helpers[name] = list(rb.lane_max)
            self.info.buffer_use_routines.add(name)

        # Send-free recursion: exercises the §7 fixed point, no warning.
        name = f"{self.t.name}_retry_walk"
        rb = RoutineBuilder(e, name, "proc", rng, n_vars=2)
        self._count_routine(rb)
        rb.begin()
        rb.e.open_block(f"if ({rb.temp()} & 3)")
        rb.e.line(f"{name}();")
        rb.e.close_block()
        rb.end()

    # -- seed routines ----------------------------------------------------------

    def _seed_file_for(self, kind: str) -> Emitter:
        if kind == "proc":
            return self._util_emitter()
        if kind == "sw":
            return self.emitters[f"{self.t.name}_sw.c"]
        suffix = self.rng.choice(("pi", "ni", "io"))
        return self.emitters[f"{self.t.name}_{suffix}.c"]

    def _emit_seed_routines(self, seed_specs: list[tuple], quotas: dict) -> None:
        for spec, idiom, name, kind in seed_specs:
            emitter = self._seed_file_for(kind)
            rb = RoutineBuilder(emitter, name, kind, self.rng, n_vars=4)
            rb.free_helper = self.free_helper
            self._count_routine(rb)
            rb.begin(omit_hook=idiom.omit_hook)
            # Common-code buffer idioms live in buffer-freeing helpers.
            if (self.t.name == "common"
                    and spec.idiom.startswith("buf-")):
                rb.has_buffer = True
                self.info.free_routines.add(name)
            sites = idiom.emit(rb, spec.label)
            rb.filler(self.rng.randrange(2, 5))
            rb.end()
            self.manifest.extend(sites)
            self.count["sends"] += idiom.cost.sends
            self.count["reads"] += idiom.cost.reads
            self.count["allocs"] += idiom.cost.allocs
            self.count["dir_lines"] += idiom.cost.dir_lines
            self.count["swait_ops"] += idiom.cost.swait_ops
            # Register sending seed procs so the §6 checker accepts them.
            if kind == "proc" and idiom.cost.sends:
                self.info.buffer_use_routines.add(name)
            if spec.idiom == "dir-subroutine":
                self.info.dir_writeback_routines.add(name)
            if kind in ("hw", "sw"):
                self._register_handler(rb)

    # -- normal routines ---------------------------------------------------------

    def _emit_normal_routines(self, roster: dict, quotas: dict) -> None:
        t = self.t
        rng = self.rng
        hw, sw, procs = roster["hw"], roster["sw"], roster["procs"]
        handlers = hw + sw

        if t.name == "common":
            send_bins = procs[: max(len(procs) // 2, 1)]
            read_bins = procs
            alloc_bins = procs[len(procs) // 2:] or procs
            dir_bins = procs[:1]
            swait_bins: list[str] = []
        else:
            # Software handlers may not send before allocating (§6 rule 2),
            # so free-standing sends go to hardware handlers only; software
            # handlers exercise the rule through self-contained allocation
            # blocks (alloc -> check -> send).
            send_bins = hw
            read_bins = hw
            alloc_bins = handlers
            dir_bins = hw
            swait_bins = hw

        plan: dict[str, dict] = {
            name: {"reads": 0, "sends": 0, "allocs": 0, "dir_lines": 0,
                   "swait_pairs": 0, "swait_strays": 0}
            for name in handlers + procs
        }
        for key, bins in (("reads", read_bins), ("sends", send_bins),
                          ("allocs", alloc_bins), ("dir_lines", dir_bins)):
            counts = _partition(rng, quotas[key], len(bins)) if bins else []
            for name, n in zip(bins, counts):
                plan[name][key] += n
        if swait_bins:
            for key in ("swait_pairs", "swait_strays"):
                counts = _partition(rng, quotas[key], len(swait_bins))
                for name, n in zip(swait_bins, counts):
                    plan[name][key] += n

        # Variable partition: every routine gets >= 2; the remainder is
        # spread with a cap that keeps no-stack handlers legal.
        all_names = handlers + procs
        baseline = 2 * len(all_names)
        extra = _partition(rng, max(t.variables - self.count["vars"] - baseline, 0),
                           len(all_names), cap=10)
        n_vars = {name: 2 + extra[i] for i, name in enumerate(all_names)}

        # Routine classes (paper §2.1/§5: a protocol mixes short pass-thru
        # handlers with long, monolithic, branch-heavy ones):
        #
        # * one *monolithic* straight-line handler sized near the max-path
        #   target;
        # * a set of *complex* routines carrying nearly all branches, with
        #   line budgets near the average-path target (their exponentially
        #   many paths dominate the protocol's path-length average);
        # * the remaining *simple* routines: short and branch-free.
        mono = hw[0] if hw else procs[0]
        bmin, bmax = _BRANCH_RANGE[t.name]
        complex_budget = max(int(t.avg_path * 1.25), 30)

        rest = [n for n in all_names if n != mono]
        rng.shuffle(rest)
        goal = int(t.paths * _PATH_FUDGE.get(t.name, 1.0))
        est = 2 + len(rest) + self._seed_path_estimate()
        branches: dict[str, int] = {name: 0 for name in all_names}
        complex_names: list[str] = []
        for name in rest:
            if est >= goal:
                break
            b = rng.randint(bmin, bmax)
            while b > 1 and est + (2 ** b) - 1 > goal * 1.08:
                b -= 1
            branches[name] = b
            est += (2 ** b) - 1
            complex_names.append(name)

        overhead = sum(6 + n_vars[name] for name in all_names)
        remaining = max(t.loc - self._nonblank_total() - overhead, 0)
        mono_budget = min(int(t.max_path * 0.99), remaining // 2)
        budgets = {mono: mono_budget}
        left = max(remaining - mono_budget, 0)
        for name in complex_names:
            budgets[name] = int(complex_budget * rng.uniform(0.85, 1.15))
            left -= budgets[name]
        simple = [n for n in rest if n not in budgets]
        # §2.1: a sizable share of the hardware handlers are pass-thru
        # handlers, "short (1-3 instructions)" - give them tiny fixed
        # bodies and let the rest of the simple class absorb the LOC.
        pass_thru = [
            n for n in simple
            if n in hw and plan[n]["sends"] == 0 and plan[n]["reads"] == 0
            and plan[n]["allocs"] == 0 and plan[n]["dir_lines"] == 0
            and plan[n]["swait_pairs"] == 0 and plan[n]["swait_strays"] == 0
        ][: max(len(hw) // 6, 0)]
        self._pass_thru = set(pass_thru)
        for name in pass_thru:
            budgets[name] = 2
            left -= 2
        simple = [n for n in simple if n not in self._pass_thru]
        left = max(left, 10 * len(simple))
        weights = [rng.uniform(0.5, 1.5) for _ in simple]
        total_weight = sum(weights) or 1.0
        for name, w in zip(simple, weights):
            budgets[name] = int(left * w / total_weight)

        for name in all_names:
            kind = "hw" if name in hw else ("sw" if name in sw else "proc")
            n_branches = branches[name]
            n_loops = 1 if (n_branches > 0 and budgets[name] > 100) else 0
            self._emit_routine(name, kind, plan[name],
                               max(n_branches - n_loops, 0),
                               budgets.get(name, 20), n_vars[name],
                               n_loops=n_loops,
                               monolithic=(name == mono))

    def _seed_path_estimate(self) -> int:
        # Seed routines and helpers contribute a couple of paths each.
        return 2 * (len(self.manifest) + self._helper_count())

    def _nonblank_total(self) -> int:
        return sum(
            sum(1 for line in e._lines if line.strip())
            for e in self.emitters.values()
        )

    def _file_for(self, name: str, kind: str) -> Emitter:
        if kind == "proc":
            return self._util_emitter()
        if kind == "sw":
            return self.emitters[f"{self.t.name}_sw.c"]
        prefix = name[:2].lower()
        suffix = prefix if prefix in ("pi", "ni", "io") else "pi"
        return self.emitters[f"{self.t.name}_{suffix}.c"]

    def _emit_routine(self, name: str, kind: str, plan: dict, n_branches: int,
                      budget: int, n_vars: int, n_loops: int = 0,
                      monolithic: bool = False) -> None:
        rng = self.rng
        emitter = self._file_for(name, kind)
        # No-stack handlers: sends and buffer macros are fine (they are
        # not real calls); the builder routes helper calls away from them.
        nostack = (kind == "hw" and not monolithic and n_vars <= 8
                   and self._nostack_count < 6 and rng.random() < 0.12)
        if nostack:
            self._nostack_count += 1
        rb = RoutineBuilder(emitter, name, kind, rng, nostack=nostack,
                            n_vars=n_vars)
        rb.free_helper = self.free_helper
        self._count_routine(rb)
        rb.begin()
        start_line = emitter.next_line

        # Build the op list and interleave with structure.
        ops: list[str] = (
            ["read"] * plan["reads"]
            + ["send"] * plan["sends"]
            + ["swait"] * plan["swait_pairs"]
            + ["stray"] * plan["swait_strays"]
        )
        rng.shuffle(ops)
        # Allocation blocks go last (they recycle the buffer).
        ops += ["alloc"] * plan["allocs"]
        dir_chunks = self._dir_chunks(plan["dir_lines"])
        # Interleave dir transactions among the ops.
        for chunk in dir_chunks:
            ops.insert(rng.randrange(len(ops) + 1) if ops else 0,
                       ("dir", chunk))

        branch_slots = n_branches
        helper_called = False
        for op in ops:
            wrap = (branch_slots > 0 and rng.random() < 0.3
                    and op not in ("alloc",))
            if wrap:
                branch_slots -= 1
                rb.branch(lambda op=op: self._emit_op(rb, op),
                          lambda: rb.filler(rng.randrange(1, 4)))
            else:
                self._emit_op(rb, op)
            if rng.random() < 0.25:
                rb.filler(rng.randrange(1, 4))
        # Occasionally call the buffer-inspection or sender helper.
        if kind == "hw" and not nostack and rng.random() < 0.25:
            rb.call(self.use_helper)
            helper_called = True
        if (kind == "hw" and not nostack and self.sender_helpers
                and rng.random() < 0.1):
            helper, vector = sorted(self.sender_helpers.items())[0]
            rb.call(helper)
            for lane in range(LANES):
                rb.lane_cum[lane] += vector[lane]
                rb.lane_max[lane] = max(rb.lane_max[lane], rb.lane_cum[lane])
        # Remaining branch/loop quota and line budget: filler structure,
        # interleaved so that straight-line runs separate the branches
        # (long shared runs are what give every path its length).
        # Loops go after the branches: a loop's dead-ended back-edge path
        # only doubles the total when nothing branches downstream of it.
        structures: list[str] = ["branch"] * branch_slots
        rng.shuffle(structures)
        structures += ["loop"] * n_loops
        body_lines = emitter.next_line - start_line
        pad = budget - body_lines
        per_structure = pad // (len(structures) + 1) if structures else pad
        for structure in structures:
            if per_structure > 4:
                rb.filler(max(per_structure - 4, 1))
            if structure == "branch":
                rb.branch(lambda: rb.filler(rng.randrange(2, 6)),
                          lambda: rb.filler(rng.randrange(1, 4)))
            else:
                rb.loop_filler(rng.randrange(2, 5))
            pad = budget - (emitter.next_line - start_line)
        while pad > 3:
            step = min(pad - 1, rng.randrange(6, 18))
            rb.filler(step)
            pad = budget - (emitter.next_line - start_line)
        if pad > 0:
            rb.filler(pad)
        rb.end()
        if kind in ("hw", "sw"):
            self._register_handler(rb)
        elif plan["sends"] > 0 and plan["allocs"] == 0:
            # A subroutine that sends on its caller's behalf must be in
            # the buffer-expecting table or the §6 checker flags it.
            self.info.buffer_use_routines.add(name)

    def _emit_op(self, rb: RoutineBuilder, op) -> None:
        if isinstance(op, tuple) and op[0] == "dir":
            reads, modify = op[1]
            rb.dir_block(reads=reads, modify=modify)
            self.count["dir_lines"] += rb.dir_lines_for(reads, modify)
            return
        if op == "read":
            rb.read_block()
            self.count["reads"] += 1
        elif op == "send":
            rb.send_block()
            self.count["sends"] += 1
        elif op == "swait":
            rb.send_block(wait=True)
            self.count["sends"] += 1
            self.count["swait_ops"] += 2
        elif op == "stray":
            rb.stray_wait()
            self.count["swait_ops"] += 1
        elif op == "alloc":
            rb.alloc_block()
            self.count["allocs"] += 1
            self.count["sends"] += 1

    def _dir_chunks(self, total_lines: int) -> list[tuple[int, bool]]:
        """Split a directory-line quota into (reads, modify) transactions.

        A transaction with ``reads`` reads and ``modify`` emits
        ``1 + reads + 2*modify`` lines (load + reads + modify + writeback).
        """
        chunks: list[tuple[int, bool]] = []
        rem = total_lines
        while rem >= 4:
            if self.rng.random() < 0.5:
                chunks.append((1, True))   # 4 lines
                rem -= 4
            else:
                chunks.append((2, False))  # 3 lines
                rem -= 3
        if rem == 3:
            chunks.append((2, False))
            rem = 0
        elif rem == 2:
            chunks.append((1, False))
            rem = 0
        elif rem == 1:
            chunks.append((0, False))      # a lone load
            rem = 0
        return chunks

    # -- bookkeeping ---------------------------------------------------------------

    def _count_routine(self, rb: RoutineBuilder) -> None:
        self.count["routines"] += 1
        self.count["vars"] += rb.n_vars

    def _register_handler(self, rb: RoutineBuilder) -> None:
        allowance = tuple(max(1, m) for m in rb.lane_max)
        self.info.handlers[rb.name] = HandlerInfo(
            name=rb.name, kind=rb.kind, lane_allowance=allowance,
            nostack=rb.nostack,
        )

    def _check_counts(self) -> None:
        t = self.t
        pairs, strays = _SWAIT_PLAN[t.name]
        expect = {
            "reads": t.db_reads,
            "sends": t.sends,
            "allocs": t.allocs,
            "dir_lines": t.dir_ops,
            "swait_ops": t.send_wait_ops,
            "routines": t.routines,
            "vars": t.variables,
        }
        for key, want in expect.items():
            got = self.count[key]
            if got != want:
                raise ValueError(
                    f"{t.name}: generated {key}={got}, target {want}"
                )


def generate_protocol(name: str, seed: int = 0xF1A5) -> GeneratedProtocol:
    """Generate one protocol (or the common code) deterministically."""
    if name not in TARGETS:
        raise KeyError(f"unknown protocol {name!r}; "
                       f"known: {', '.join(TARGETS)}")
    return ProtocolBuilder(TARGETS[name], seed=seed).build()


def generate_all(seed: int = 0xF1A5) -> dict[str, GeneratedProtocol]:
    """Generate the five protocols plus common code."""
    return {name: generate_protocol(name, seed=seed) for name in TARGETS}
