"""Deterministic generation of the FLASH protocols under test."""

from .builder import RoutineBuilder
from .bugs import CATALOG, IDIOMS, SeedSpec
from .emit import Emitter
from .model import GeneratedProtocol, ProtocolTargets, SeededSite
from .protocols import PROTOCOL_NAMES, TARGETS, generate_all, generate_protocol

__all__ = [
    "RoutineBuilder", "CATALOG", "IDIOMS", "SeedSpec", "Emitter",
    "GeneratedProtocol", "ProtocolTargets", "SeededSite",
    "PROTOCOL_NAMES", "TARGETS", "generate_all", "generate_protocol",
]
