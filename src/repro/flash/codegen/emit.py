"""Line-tracking C source emitter.

The generator needs to know the exact line every seeded defect lands on
(the benchmark joins checker reports against the manifest by file and
line), so sources are built through this small emitter rather than
unparsed from ASTs.
"""

from __future__ import annotations


class Emitter:
    """Accumulates C source text for one file, tracking line numbers."""

    def __init__(self, filename: str):
        self.filename = filename
        self._lines: list[str] = []
        self._indent = 0

    @property
    def next_line(self) -> int:
        """The 1-based line number the next :meth:`line` call will use."""
        return len(self._lines) + 1

    def line(self, text: str = "") -> int:
        """Emit one line at the current indent; returns its line number."""
        if text:
            self._lines.append("    " * self._indent + text)
        else:
            self._lines.append("")
        return len(self._lines)

    def lines(self, *texts: str) -> int:
        """Emit several lines; returns the line number of the first."""
        first = self.next_line
        for text in texts:
            self.line(text)
        return first

    def open_block(self, header: str) -> int:
        """Emit ``header {`` and indent."""
        number = self.line(header + " {")
        self._indent += 1
        return number

    def close_block(self, suffix: str = "") -> int:
        """Dedent and emit ``}``."""
        self._indent -= 1
        return self.line("}" + suffix)

    def comment(self, text: str) -> int:
        return self.line(f"/* {text} */")

    def blank(self) -> int:
        return self.line("")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __len__(self) -> int:
        return len(self._lines)
