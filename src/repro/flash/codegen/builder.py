"""Routine- and protocol-level code builders.

:class:`RoutineBuilder` emits one FLASH routine (hardware handler,
software handler, or subroutine) that is *correct by construction* with
respect to every checker: hooks first, buffer discipline balanced on all
paths, every send paired with a consistent length assignment, directory
transactions load/modify/write-back in order, wait-bit sends immediately
waited for, allocations checked.  Seeded defects are injected by the
idiom functions in :mod:`repro.flash.codegen.bugs`, which deliberately
break exactly one of these guarantees and record where.

The builder also tracks the structural counts the protocol must hit
(sends, reads, allocations, directory lines, variables, lane maxima) so
:mod:`repro.flash.codegen.protocols` can match the paper's "Applied"
columns exactly.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Optional

from ...project import HandlerInfo, ProtocolInfo
from .. import machine
from .emit import Emitter
from .model import SeededSite

LANES = machine.LANE_COUNT

#: (send macro, lane, flag constant) choices for generated sends.
_SEND_FORMS = (
    ("PI_SEND", machine.LANE_PI),
    ("IO_SEND", machine.LANE_IO),
    ("NI_SEND_REQ", machine.LANE_NI_REQUEST),
    ("NI_SEND_REPLY", machine.LANE_NI_REPLY),
)

_LEN_FOR_FLAG = {
    "F_DATA": ("LEN_CACHELINE", "LEN_WORD"),
    "F_NODATA": ("LEN_NODATA",),
}


class RoutineBuilder:
    """Emits one routine into a file emitter."""

    def __init__(self, emitter: Emitter, name: str, kind: str, rng: Random,
                 nostack: bool = False, n_vars: int = 3):
        self.e = emitter
        self.name = name
        self.kind = kind  # "hw" | "sw" | "proc"
        self.rng = rng
        self.nostack = nostack
        self.n_vars = max(n_vars, 1)
        self.has_buffer = kind == "hw"
        self.var_names: list[str] = []
        # Per-lane send tracking for the handler's allowance.
        self.lane_cum = [0] * LANES
        self.lane_max = [0] * LANES
        self.definition_line = 0
        self._open = False
        self._returned = False
        #: Name of this protocol's buffer-freeing helper (set by the
        #: protocol builder; used by the double-free seed idiom).
        self.free_helper = "forward_and_free"

    # -- lifecycle -----------------------------------------------------------

    def begin(self, omit_hook: Optional[str] = None) -> None:
        """Open the function: signature, simulator hooks, declarations.

        ``omit_hook`` skips one hook call ("first"/"second") — the §8
        violation idiom.
        """
        self.definition_line = self.e.open_block(f"void {self.name}(void)")
        if self.kind in ("hw", "sw"):
            if omit_hook != "first":
                self.e.line("HANDLER_DEFS();")
            second = ("HANDLER_PROLOGUE" if self.kind == "hw"
                      else "SWHANDLER_PROLOGUE")
            if omit_hook != "second":
                self.e.line(f"{second}();")
        else:
            if omit_hook != "first":
                self.e.line("SUBROUTINE_PROLOGUE();")
        if self.nostack:
            self.e.line("NOSTACK();")
        self._declare_vars()
        self._open = True

    def _declare_vars(self) -> None:
        names = ["addr", "buf"] + [f"t{i}" for i in range(self.n_vars)]
        self.var_names = names[: self.n_vars]
        for name in self.var_names:
            self.e.line(f"unsigned {name};")
        self.e.line(f"{self.var_names[0]} = HANDLER_GLOBALS(header.nh.addr);")

    def var(self, index: int = 0) -> str:
        return self.var_names[index % len(self.var_names)]

    def temp(self) -> str:
        """A scratch variable (prefers t-names over addr/buf)."""
        pool = self.var_names[2:] or self.var_names
        return self.rng.choice(pool)

    def end(self) -> None:
        """Close the routine, freeing the buffer if still held."""
        if not self._returned:
            if self.has_buffer:
                self.e.line("DB_FREE();")
                self.has_buffer = False
            self.e.line("return;")
        self.e.close_block()
        self.e.blank()
        self._open = False

    # -- structural segments ---------------------------------------------------

    def filler(self, n: int = 1) -> None:
        """Emit ``n`` lines of scalar arithmetic."""
        for _ in range(n):
            a, b = self.temp(), self.temp()
            form = self.rng.randrange(5)
            if form == 0:
                self.e.line(f"{a} = {b} + {self.rng.randrange(1, 64)};")
            elif form == 1:
                self.e.line(f"{a} = ({b} << {self.rng.randrange(1, 4)}) & 1023;")
            elif form == 2:
                self.e.line(f"{a} = {b} ^ {self.var(0)};")
            elif form == 3:
                self.e.line(f"{a} = {b} | {1 << self.rng.randrange(8)};")
            else:
                self.e.line(f"{a} = {a} + ({b} & {self.rng.randrange(1, 16)});")

    def loop_filler(self, body_lines: int = 2) -> None:
        """A small counted loop (exercises back-edge handling)."""
        counter = self.temp()
        bound = self.rng.randrange(2, 9)
        self.e.open_block(
            f"for ({counter} = 0; {counter} < {bound}; {counter} = {counter} + 1)"
        )
        self.filler(body_lines)
        self.e.close_block()

    def branch(self, then_body: Callable[[], None],
               else_body: Optional[Callable[[], None]] = None,
               cond: Optional[str] = None) -> None:
        """A plain two-way branch; lane counts merge with per-lane max."""
        cond = cond or f"{self.temp()} & {1 << self.rng.randrange(6)}"
        saved = list(self.lane_cum)
        self.e.open_block(f"if ({cond})")
        then_body()
        then_cum = list(self.lane_cum)
        self.e.close_block()
        if else_body is not None:
            self.lane_cum = list(saved)
            self.e.open_block("else")
            else_body()
            self.e.close_block()
        else:
            self.lane_cum = list(saved)
        self.lane_cum = [max(a, b) for a, b in zip(self.lane_cum, then_cum)]

    def switch_dispatch(self, arms: int = 3, arm_lines: int = 2) -> None:
        """A switch over the incoming opcode with ``arms`` cases."""
        self.e.open_block("switch (HANDLER_GLOBALS(header.nh.op))")
        for i in range(arms):
            self.e.line(f"case {i}:")
            self.filler(arm_lines)
            self.e.line("break;")
        self.e.line("default:")
        self.e.line("break;")
        self.e.close_block()

    # -- FLASH operations ----------------------------------------------------

    def read_block(self, synchronized: bool = True) -> int:
        """WAIT_FOR_DB_FULL + MISCBUS_READ_DB; returns the read's line."""
        target = self.temp()
        if synchronized:
            self.e.line(f"WAIT_FOR_DB_FULL({self.var(0)});")
        return self.e.line(
            f"{target} = MISCBUS_READ_DB({self.var(0)}, "
            f"{self.rng.randrange(0, 32, 4)});"
        )

    def _send_text(self, form: str, flag: str, wait: int) -> str:
        keep = self.rng.randrange(2)
        if form == "PI_SEND":
            return f"PI_SEND({flag}, {keep}, 0, {wait}, 1, 0);"
        if form == "IO_SEND":
            return f"IO_SEND({flag}, {keep}, 0, {wait}, 1, 0);"
        ni_type = "NI_REQUEST" if form == "NI_SEND_REQ" else "NI_REPLY"
        return f"NI_SEND({ni_type}, {flag}, {keep}, {wait}, 1, 0);"

    def send_block(self, form: Optional[str] = None, flag: Optional[str] = None,
                   wait: bool = False, count_lane: bool = True,
                   set_len: bool = True) -> int:
        """A length assignment + send (+ matching wait); returns send line."""
        if form is None:
            form, lane = self.rng.choice(_SEND_FORMS)
        else:
            lane = dict(_SEND_FORMS)[form]
        if flag is None:
            flag = self.rng.choice(("F_DATA", "F_NODATA"))
        if set_len:
            len_const = self.rng.choice(_LEN_FOR_FLAG[flag])
            self.e.line(f"HANDLER_GLOBALS(header.nh.len) = {len_const};")
        line = self.e.line(self._send_text(form, flag, 1 if wait else 0))
        if count_lane:
            self.lane_cum[lane] += 1
            self.lane_max[lane] = max(self.lane_max[lane], self.lane_cum[lane])
        if wait:
            base = form.split("_")[0]  # PI / IO / NI
            self.e.line(f"WAIT_FOR_{base}_REPLY();")
        return line

    def wait_for_space(self, lane: int) -> None:
        """Explicit output-queue space check; resets the lane's quota."""
        name = ("LANE_PI", "LANE_IO", "LANE_NI_REQUEST", "LANE_NI_REPLY")[lane]
        self.e.line(f"WAIT_FOR_SPACE({name});")
        self.lane_cum[lane] = 0

    def stray_wait(self) -> int:
        """A wait macro with no outstanding wait-bit send (legal)."""
        base = self.rng.choice(("PI", "IO", "NI"))
        return self.e.line(f"WAIT_FOR_{base}_REPLY();")

    def alloc_block(self, check: bool = True, debug_before_check: bool = False) -> dict:
        """Free current buffer (if held), allocate, check, send once.

        Returns the line numbers of the pieces for seeding purposes.
        """
        lines: dict = {}
        if self.has_buffer:
            self.e.line("DB_FREE();")
        lines["alloc"] = self.e.line("buf = DB_ALLOC();")
        self.has_buffer = True
        if debug_before_check:
            lines["debug"] = self.e.line("DEBUG_PRINT(buf);")
        if check:
            self.e.open_block("if (DB_IS_ERROR(buf))")
            self.e.line("return;")
            self.e.close_block()
        lines["send"] = self.send_block(flag="F_DATA")
        return lines

    def dir_block(self, reads: int = 1, modify: bool = False,
                  writeback: Optional[bool] = None) -> dict:
        """A directory transaction; returns line numbers.

        Emits ``1 + reads + modify + writeback`` directory-op lines.
        """
        if writeback is None:
            writeback = modify
        lines: dict = {}
        lines["load"] = self.e.line(
            "HANDLER_GLOBALS(dirEntry) = "
            "DIR_LOAD(HANDLER_GLOBALS(header.nh.addr));"
        )
        for _ in range(reads):
            target = self.temp()
            lines.setdefault("reads", []).append(self.e.line(
                f"{target} = HANDLER_GLOBALS(dirEntry) & "
                f"{(1 << self.rng.randrange(1, 8)) - 1};"
            ))
        if modify:
            op = self.rng.choice(("|", "&"))
            mask = 1 << self.rng.randrange(8)
            operand = f"{mask}" if op == "|" else f"~{mask}"
            lines["modify"] = self.e.line(
                "HANDLER_GLOBALS(dirEntry) = "
                f"HANDLER_GLOBALS(dirEntry) {op} {operand};"
            )
        if writeback:
            lines["writeback"] = self.e.line(
                "DIR_WRITEBACK(HANDLER_GLOBALS(header.nh.addr), "
                "HANDLER_GLOBALS(dirEntry));"
            )
        return lines

    def dir_lines_for(self, reads: int, modify: bool, writeback=None) -> int:
        if writeback is None:
            writeback = modify
        return 1 + reads + int(modify) + int(writeback)

    def nak_exit(self, cond: Optional[str] = None) -> int:
        """Early back-out path: NAK reply, free, return.  +1 send."""
        cond = cond or f"{self.temp()} & {1 << self.rng.randrange(6)}"
        self.e.open_block(f"if ({cond})")
        self.e.line("HANDLER_GLOBALS(header.nh.op) = MSG_NAK;")
        line = self.send_block(form="NI_SEND_REPLY", flag="F_NODATA",
                               count_lane=True)
        if self.has_buffer:
            self.e.line("DB_FREE();")
        self.e.line("return;")
        self.e.close_block()
        return line

    def free_and_return(self, cond: Optional[str] = None) -> int:
        """Early exit that correctly frees first; returns the return line."""
        cond = cond or f"{self.temp()} & {1 << self.rng.randrange(6)}"
        self.e.open_block(f"if ({cond})")
        if self.has_buffer:
            self.e.line("DB_FREE();")
        line = self.e.line("return;")
        self.e.close_block()
        return line

    def explicit_return(self) -> int:
        """Emit the routine's final free+return; returns the return line.

        Used by seed idioms that need the exact line of the closing
        ``return`` (several checkers report at the function exit).
        """
        if self.has_buffer:
            self.e.line("DB_FREE();")
            self.has_buffer = False
        line = self.e.line("return;")
        self._returned = True
        return line

    def call(self, callee: str) -> int:
        """Call a subroutine (SET_STACKPTR discipline if no-stack)."""
        if self.nostack:
            self.e.line("SET_STACKPTR();")
        return self.e.line(f"{callee}();")
