"""Seeded defect idioms and the per-protocol catalog (Tables 2-7).

Each idiom function emits one defective (or annotation-bearing) code
idiom into an open :class:`RoutineBuilder` and returns the ground-truth
:class:`SeededSite` entries for the diagnostics the checkers will (or,
for annotations, will *not*) produce there.  The idioms are modelled on
the paper's own descriptions of each bug class: unsynchronized
first-byte reads (§4), uncached-read and eager-mode length bugs (§5),
legacy double frees and buffer hand-off annotations (§6), the
hardware-workaround and typo lane bugs (§7), simulator-hook omissions
(§8), debug prints before allocation checks, caller-writes-back
subroutines, silent speculative back-outs, explicit directory address
computation, and spin-waits that bypass the interface macros (§9).

``CATALOG`` maps each protocol to its exact seeded contents; the counts
reproduce the per-protocol cells of Tables 2-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .builder import RoutineBuilder
from .model import SeededSite


@dataclass(frozen=True)
class IdiomCost:
    """Structural quota an idiom consumes (kept in sync with emission)."""

    reads: int = 0
    sends: int = 0
    allocs: int = 0
    dir_lines: int = 0
    swait_ops: int = 0


@dataclass(frozen=True)
class Idiom:
    key: str
    emit: Callable[[RoutineBuilder, str], list[SeededSite]]
    cost: IdiomCost = field(default_factory=IdiomCost)
    #: Routine kind the idiom needs ("hw", "sw", "proc").
    kind: str = "hw"
    #: Hook omission passed to RoutineBuilder.begin.
    omit_hook: str | None = None


def _site(rb: RoutineBuilder, checker: str, label: str, note: str,
          line: int) -> SeededSite:
    return SeededSite(checker=checker, label=label, note=note,
                      file=rb.e.filename, line=line)


# -- §4 buffer race -----------------------------------------------------------

def race_read(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    rb.e.comment("reads the first byte before the fill completes")
    line = rb.read_block(synchronized=False)
    note = ("race: data buffer read without WAIT_FOR_DB_FULL"
            if label == "error"
            else "debug read that intentionally skips synchronization")
    return [_site(rb, "buffer-race", label, note, line)]


# -- §5 message length ---------------------------------------------------------

def msglen_stale(rb: RoutineBuilder, label: str, *, initial: str,
                 flag: str, note: str) -> list[SeededSite]:
    rb.e.line(f"HANDLER_GLOBALS(header.nh.len) = {initial};")
    rb.filler(2)
    sites: list[SeededSite] = []

    def buggy_arm():
        line = rb.send_block(form="NI_SEND_REPLY", flag=flag, set_len=False)
        sites.append(_site(rb, "msg-length", label, note, line))

    rb.branch(buggy_arm)
    return sites


def msglen_uncached(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return msglen_stale(
        rb, label, initial="LEN_NODATA", flag="F_DATA",
        note="uncached read handler: data reply sent with stale "
             "LEN_NODATA when the line is dirty remotely and the queue "
             "is full",
    )


def msglen_eager(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return msglen_stale(
        rb, label, initial="LEN_WORD", flag="F_NODATA",
        note="eager-mode handler (simulation only): no-data reply sent "
             "with a non-zero length left over",
    )


def msglen_harmless(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return msglen_stale(
        rb, label, initial="LEN_CACHELINE", flag="F_NODATA",
        note="length/data inconsistency masked by a hardware detail but "
             "fatal in simulation (counted as a bug by the paper)",
    )


def msglen_rac_queue(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return msglen_stale(
        rb, label, initial="LEN_NODATA", flag="F_DATA",
        note="rac-only: replicated line reply with stale zero length",
    )


def msglen_runtime_flag(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    """The coma idiom: send parameter chosen by a run-time variable.

    Produces two impossible-path diagnostics (Table 3's 2 false
    positives, both in the same function).
    """
    cond = f"{rb.temp()} & 1"
    rb.branch(
        lambda: rb.e.line("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;"),
        lambda: rb.e.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;"),
        cond=cond,
    )
    rb.filler(2)
    sites: list[SeededSite] = []

    def data_arm():
        line = rb.send_block(form="NI_SEND_REQ", flag="F_DATA", set_len=False)
        sites.append(_site(
            rb, "msg-length", label,
            "impossible path: the same run-time flag selects length and "
            "send parameter (checker does not prune)", line))

    def nodata_arm():
        line = rb.send_block(form="NI_SEND_REQ", flag="F_NODATA", set_len=False)
        sites.append(_site(
            rb, "msg-length", label,
            "impossible path: the same run-time flag selects length and "
            "send parameter (checker does not prune)", line))

    rb.branch(data_arm, nodata_arm, cond=cond)
    return sites


# -- §6 buffer management ---------------------------------------------------

def buf_double_free(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    sites: list[SeededSite] = []

    def arm():
        rb.e.comment("legacy path inherited from the parent protocol")
        rb.call(rb.free_helper)
        line = rb.e.line("DB_FREE();")
        rb.e.line("return;")
        sites.append(_site(
            rb, "buffer-mgmt", label,
            "double free: helper already freed the buffer (bug propagated "
            "from the shared parent source)", line))

    rb.branch(arm)
    return sites


def buf_leak(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    sites: list[SeededSite] = []

    def arm():
        rb.e.comment("forgets the incoming buffer on this path")
        line = rb.e.line("return;")
        sites.append(_site(
            rb, "buffer-mgmt", label,
            "leak: handler completes without freeing its data buffer",
            line))

    rb.branch(arm)
    return sites


def buf_minor(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    sites: list[SeededSite] = []

    def arm():
        rb.e.comment("debug-only escape; unreachable in production")
        line = rb.e.line("return;")
        sites.append(_site(
            rb, "buffer-mgmt", label,
            "harmless violation on an unreachable/debug path", line))

    rb.branch(arm, cond=f"{rb.temp()} & 128")
    return sites


def buf_useful_annotation(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    sites: list[SeededSite] = []

    def arm():
        rb.e.comment("buffer deliberately kept for the next handler")
        line = rb.e.line("no_free_needed();")
        rb.e.line("return;")
        sites.append(_site(
            rb, "buffer-mgmt", label,
            "useful annotation: hand-off path keeps the buffer for a "
            "subsequent handler", line))

    rb.branch(arm)
    return sites


def buf_useless_annotation(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    cond = f"{rb.temp()} & 8"
    sites: list[SeededSite] = []
    rb.e.open_block(f"if ({cond})")
    rb.e.line("DB_FREE();")
    rb.e.line("return;")
    rb.e.close_block()
    rb.filler(1)
    rb.e.open_block(f"if ({cond})")
    line = rb.e.line("no_free_needed();")
    rb.e.line("return;")
    rb.e.close_block()
    sites.append(_site(
        rb, "buffer-mgmt", label,
        "useless annotation: second branch on the same condition is an "
        "impossible path the checker does not prune", line))
    return sites


# -- §7 lanes ------------------------------------------------------------------

def lane_extra_send(rb: RoutineBuilder, label: str, note: str) -> list[SeededSite]:
    rb.send_block(form="NI_SEND_REQ", flag="F_NODATA")
    rb.filler(2)
    rb.e.comment("second send on the same lane without WAIT_FOR_SPACE")
    line = rb.send_block(form="NI_SEND_REQ", flag="F_NODATA",
                         count_lane=False)
    return [_site(rb, "lanes", label, note, line)]


def lane_workaround(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return lane_extra_send(
        rb, label,
        "hardware-bug workaround inserted by a non-author exceeds the "
        "handler's lane allowance (sporadic deadlock)",
    )


def lane_typo(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    return lane_extra_send(
        rb, label,
        "typo: duplicated send exceeds the handler's lane allowance",
    )


# -- §8 execution restrictions ---------------------------------------------

def hook_omission(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    """The begin() call already omitted a hook; just record the site."""
    note = ("simulator hook omitted (affects only simulation results)"
            if label == "violation"
            else "hook omission in an unimplemented routine (fatal if "
                 "called; not counted by the paper)")
    if label == "uncounted":
        rb.e.line("FATAL_ERROR();")
    return [_site(rb, "exec-restrict", label, note, rb.definition_line)]


# -- §9 allocation failure ------------------------------------------------------

def alloc_debug(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    lines = rb.alloc_block(check=True, debug_before_check=True)
    return [_site(
        rb, "alloc-fail", label,
        "debug print of the buffer value before the DB_IS_ERROR check",
        lines["debug"])]


# -- §9 directory management -----------------------------------------------

def dir_forgot_writeback(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    rb.dir_block(reads=1, modify=True, writeback=False)
    rb.filler(1)
    line = rb.explicit_return()
    return [_site(
        rb, "directory", label,
        "directory entry modified but never written back (stale entry)",
        line)]


def dir_subroutine(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    rb.e.comment("caller is responsible for the write-back")
    rb.dir_block(reads=0, modify=True, writeback=False)
    line = rb.explicit_return()
    return [_site(
        rb, "directory", label,
        "subroutine modifies the entry; its callers write it back "
        "(annotation required to silence)", line)]


def dir_speculative(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    rb.dir_block(reads=1, modify=True, writeback=False)
    sites: list[SeededSite] = []
    rb.e.open_block(f"if ({rb.temp()} & 2)")
    rb.e.comment("back out of the speculative update without a NAK")
    if rb.has_buffer:
        rb.e.line("DB_FREE();")
    line = rb.e.line("return;")
    rb.e.close_block()
    sites.append(_site(
        rb, "directory", label,
        "speculative path intentionally drops its modification without "
        "sending a NAK", line))
    rb.e.line("DIR_WRITEBACK(HANDLER_GLOBALS(header.nh.addr), "
              "HANDLER_GLOBALS(dirEntry));")
    return sites


def dir_abstraction(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    t = rb.temp()
    rb.e.line(f"{t} = ({rb.var(0)} << 3) + 64;")
    rb.e.comment("entry address computed by hand instead of the macro")
    line = rb.e.line(f"DIR_WRITEBACK({t}, {rb.temp()});")
    return [_site(
        rb, "directory", label,
        "abstraction error: directory address computed explicitly, so "
        "the checker sees a write-back with no load", line)]


# -- §9 send-wait -------------------------------------------------------------

def swait_spin(rb: RoutineBuilder, label: str) -> list[SeededSite]:
    from .. import machine as m
    base = rb.rng.choice(("PI", "NI"))
    rb.e.line("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;")
    if base == "PI":
        rb.e.line("PI_SEND(F_DATA, 1, 0, 1, 1, 0);")
        lane = m.LANE_PI
    else:
        rb.e.line("NI_SEND(NI_REQUEST, F_DATA, 1, 1, 1, 0);")
        lane = m.LANE_NI_REQUEST
    rb.lane_cum[lane] += 1
    rb.lane_max[lane] = max(rb.lane_max[lane], rb.lane_cum[lane])
    rb.e.comment("abstraction violation: spin on the raw status register")
    rb.e.open_block(f"while (!{base}_REPLY_READY())")
    rb.e.line("SPIN();")
    rb.e.close_block()
    line = rb.explicit_return()
    return [_site(
        rb, "send-wait", label,
        "wait performed by spinning on the interface status instead of "
        "the supplied wait macro", line)]


IDIOMS: dict[str, Idiom] = {
    "race-read-error": Idiom("race-read-error",
                             lambda rb, lb: race_read(rb, lb),
                             IdiomCost(reads=1)),
    "race-read-fp": Idiom("race-read-fp", lambda rb, lb: race_read(rb, lb),
                          IdiomCost(reads=1), kind="proc"),
    "msglen-uncached": Idiom("msglen-uncached",
                             lambda rb, lb: msglen_uncached(rb, lb),
                             IdiomCost(sends=1)),
    "msglen-eager": Idiom("msglen-eager", lambda rb, lb: msglen_eager(rb, lb),
                          IdiomCost(sends=1)),
    "msglen-harmless": Idiom("msglen-harmless",
                             lambda rb, lb: msglen_harmless(rb, lb),
                             IdiomCost(sends=1)),
    "msglen-rac-queue": Idiom("msglen-rac-queue",
                              lambda rb, lb: msglen_rac_queue(rb, lb),
                              IdiomCost(sends=1)),
    "msglen-runtime-flag": Idiom("msglen-runtime-flag",
                                 lambda rb, lb: msglen_runtime_flag(rb, lb),
                                 IdiomCost(sends=2)),
    "buf-double-free": Idiom("buf-double-free",
                             lambda rb, lb: buf_double_free(rb, lb)),
    "buf-leak": Idiom("buf-leak", lambda rb, lb: buf_leak(rb, lb)),
    "buf-minor": Idiom("buf-minor", lambda rb, lb: buf_minor(rb, lb)),
    "buf-useful-annotation": Idiom("buf-useful-annotation",
                                   lambda rb, lb: buf_useful_annotation(rb, lb)),
    "buf-useless-annotation": Idiom("buf-useless-annotation",
                                    lambda rb, lb: buf_useless_annotation(rb, lb)),
    "lane-workaround": Idiom("lane-workaround",
                             lambda rb, lb: lane_workaround(rb, lb),
                             IdiomCost(sends=2)),
    "lane-typo": Idiom("lane-typo", lambda rb, lb: lane_typo(rb, lb),
                       IdiomCost(sends=2)),
    "hook-omission": Idiom("hook-omission",
                           lambda rb, lb: hook_omission(rb, lb),
                           omit_hook="second"),
    "hook-omission-proc": Idiom("hook-omission-proc",
                                lambda rb, lb: hook_omission(rb, lb),
                                kind="proc", omit_hook="first"),
    "alloc-debug": Idiom("alloc-debug", lambda rb, lb: alloc_debug(rb, lb),
                         IdiomCost(sends=1, allocs=1)),
    "dir-forgot-writeback": Idiom("dir-forgot-writeback",
                                  lambda rb, lb: dir_forgot_writeback(rb, lb),
                                  IdiomCost(dir_lines=3)),
    "dir-subroutine": Idiom("dir-subroutine",
                            lambda rb, lb: dir_subroutine(rb, lb),
                            IdiomCost(dir_lines=2), kind="proc"),
    "dir-speculative": Idiom("dir-speculative",
                             lambda rb, lb: dir_speculative(rb, lb),
                             IdiomCost(dir_lines=4)),
    "dir-abstraction": Idiom("dir-abstraction",
                             lambda rb, lb: dir_abstraction(rb, lb),
                             IdiomCost(dir_lines=1)),
    "swait-spin": Idiom("swait-spin", lambda rb, lb: swait_spin(rb, lb),
                        IdiomCost(sends=1, swait_ops=1)),
    "swait-spin-proc": Idiom("swait-spin-proc",
                             lambda rb, lb: swait_spin(rb, lb),
                             IdiomCost(sends=1, swait_ops=1), kind="proc"),
}


@dataclass(frozen=True)
class SeedSpec:
    """One catalog entry: which idiom, how it is classified, how many."""

    idiom: str
    label: str
    count: int = 1


#: Per-protocol seeded contents, matching Tables 2-7 cell by cell.
CATALOG: dict[str, list[SeedSpec]] = {
    "bitvector": [
        SeedSpec("race-read-error", "error", 4),            # Table 2
        SeedSpec("msglen-uncached", "error", 1),            # Table 3
        SeedSpec("msglen-eager", "error", 1),
        SeedSpec("msglen-harmless", "error", 1),
        SeedSpec("buf-double-free", "error", 2),            # Table 4
        SeedSpec("buf-minor", "minor", 1),
        SeedSpec("buf-useless-annotation", "useless-annotation", 1),
        SeedSpec("lane-typo", "error", 1),                  # §7
        SeedSpec("hook-omission", "violation", 2),          # Table 5
        SeedSpec("dir-forgot-writeback", "error", 1),       # Table 6
        SeedSpec("dir-subroutine", "fp", 1),
        SeedSpec("dir-abstraction", "fp", 2),
        SeedSpec("swait-spin", "fp", 2),
    ],
    "dyn_ptr": [
        SeedSpec("msglen-uncached", "error", 6),
        SeedSpec("msglen-eager", "error", 1),
        SeedSpec("buf-double-free", "error", 2),
        SeedSpec("buf-minor", "minor", 2),
        SeedSpec("buf-useful-annotation", "useful-annotation", 3),
        SeedSpec("buf-useless-annotation", "useless-annotation", 3),
        SeedSpec("lane-workaround", "error", 1),
        SeedSpec("hook-omission", "violation", 4),
        SeedSpec("alloc-debug", "fp", 2),
        SeedSpec("dir-subroutine", "fp", 4),
        SeedSpec("dir-speculative", "fp", 1),
        SeedSpec("dir-abstraction", "fp", 8),
        SeedSpec("swait-spin", "fp", 2),
    ],
    "sci": [
        SeedSpec("buf-double-free", "error", 2),   # partially implemented code
        SeedSpec("buf-leak", "error", 1),
        SeedSpec("buf-minor", "minor", 2),
        SeedSpec("buf-useful-annotation", "useful-annotation", 10),
        SeedSpec("buf-useless-annotation", "useless-annotation", 10),
        SeedSpec("hook-omission-proc", "uncounted", 3),
        SeedSpec("dir-abstraction", "fp", 1),
    ],
    "coma": [
        SeedSpec("msglen-runtime-flag", "fp", 1),   # yields 2 FP sites
        SeedSpec("hook-omission", "violation", 3),
        SeedSpec("dir-subroutine", "fp", 5),
    ],
    "rac": [
        SeedSpec("msglen-uncached", "error", 6),
        SeedSpec("msglen-eager", "error", 1),
        SeedSpec("msglen-rac-queue", "error", 1),
        SeedSpec("buf-double-free", "error", 2),
        SeedSpec("buf-useful-annotation", "useful-annotation", 2),
        SeedSpec("buf-useless-annotation", "useless-annotation", 4),
        SeedSpec("hook-omission", "violation", 2),
        SeedSpec("dir-subroutine", "fp", 4),
        SeedSpec("dir-speculative", "fp", 2),
        SeedSpec("dir-abstraction", "fp", 3),
        SeedSpec("swait-spin", "fp", 2),
    ],
    "common": [
        SeedSpec("race-read-fp", "fp", 1),
        SeedSpec("buf-minor", "minor", 1),
        SeedSpec("buf-useful-annotation", "useful-annotation", 3),
        SeedSpec("buf-useless-annotation", "useless-annotation", 7),
        SeedSpec("swait-spin-proc", "fp", 2),
    ],
}
