"""Data model for generated FLASH protocols.

The generator is driven by two kinds of data, both taken from the paper:

* :class:`ProtocolTargets` — the *structural* numbers a protocol must hit
  (Table 1's size and path statistics, Table 5's routine/variable counts,
  and the per-checker "Applied" columns of Tables 2, 3 and 6);
* a seeded-site catalog (:mod:`repro.flash.codegen.bugs`) — the *defects
  and idioms* each protocol contains, matching the error / minor /
  false-positive / annotation cells of Tables 2-7.

Generation is deterministic: the same protocol name always yields the
same sources, manifest and :class:`repro.project.ProtocolInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...project import Program, ProtocolInfo


@dataclass
class SeededSite:
    """Ground truth for one seeded report site.

    ``label`` says how the paper's authors classified the diagnostic the
    checker produces at this site:

    - ``error``      — a real bug (Tables 2-7 "Errors");
    - ``minor``      — technically a violation but minor/unreachable
                       (Table 4 "Minor");
    - ``violation``  — counted violations that are not errors (Table 5);
    - ``fp``         — a false positive;
    - ``uncounted``  — reported by the checker but excluded from the
                       paper's counts (e.g. sci's unimplemented routines
                       in Table 5);
    - ``useful-annotation`` / ``useless-annotation`` — annotation call
                       sites (Table 4); these *suppress* a warning rather
                       than produce one.
    """

    checker: str
    label: str
    note: str
    file: str = ""
    line: int = 0

    #: Labels that correspond to an expected checker *report*.
    REPORT_LABELS = ("error", "minor", "violation", "fp", "uncounted")
    #: Labels that correspond to an annotation call (no report expected).
    ANNOTATION_LABELS = ("useful-annotation", "useless-annotation")

    @property
    def expects_report(self) -> bool:
        return self.label in self.REPORT_LABELS

    @property
    def key(self) -> tuple:
        return (self.file, self.line)


@dataclass(frozen=True)
class ProtocolTargets:
    """Structural goals for one protocol, straight from the paper."""

    name: str
    loc: int                 # Table 1
    paths: int               # Table 1
    avg_path: int            # Table 1
    max_path: int            # Table 1
    routines: int            # Table 5 "Handlers"
    variables: int           # Table 5 "Vars"
    db_reads: int            # Table 2 "Applied"
    sends: int               # Table 3 "Applied"
    allocs: int              # Table 6 buffer-alloc "Applied"
    dir_ops: int             # Table 6 directory "Applied"
    send_wait_ops: int       # Table 6 send-wait "Applied"
    hw_handlers: int         # paper §2.1: 65-90 handlers per protocol


@dataclass
class GeneratedProtocol:
    """One generated protocol: sources + tables + ground truth."""

    name: str
    files: dict[str, str]
    info: ProtocolInfo
    manifest: list[SeededSite]
    targets: ProtocolTargets
    _program: Program | None = field(default=None, repr=False)

    def program(self) -> Program:
        """Parse and annotate the sources (cached)."""
        if self._program is None:
            self._program = Program(self.files, info=self.info)
        return self._program

    def manifest_by_key(self) -> dict[tuple, list[SeededSite]]:
        index: dict[tuple, list[SeededSite]] = {}
        for site in self.manifest:
            index.setdefault(site.key, []).append(site)
        return index

    def sites_for(self, checker: str) -> list[SeededSite]:
        return [s for s in self.manifest if s.checker == checker]

    def loc(self) -> int:
        return sum(
            sum(1 for line in text.splitlines() if line.strip())
            for text in self.files.values()
        )
