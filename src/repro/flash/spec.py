"""The protocol specification file format.

The paper's §8 checker "automatically constructs a list of all hardware
handlers ... by extracting the former from the protocol specification",
and §7's lane checker consumes "a protocol-writer supplied list of each
handler's lane allowances".  This module gives that specification a
concrete, human-editable form so the command-line tools can check real
files with the right handler tables:

.. code-block:: none

    # comments and blank lines are ignored
    protocol bitvector
    handler PILocalGet hw lanes 1 1 2 1
    handler SWHandlerIdle sw lanes 1 1 1 1 nostack
    free_routine bitvector_forward_and_free
    buffer_use_routine bitvector_inspect_buffer
    frees_if_true try_forward
    dir_writeback_routine update_sharers

`mc-check generate` emits a ``.spec`` alongside the sources and
``mc-check check --spec`` loads it.
"""

from __future__ import annotations

from ..errors import ReproError
from ..project import HandlerInfo, ProtocolInfo
from . import machine


class SpecError(ReproError):
    """A protocol specification file is malformed."""


def dump_spec(info: ProtocolInfo) -> str:
    """Serialize a :class:`ProtocolInfo` to spec text."""
    lines = [
        "# FLASH protocol specification (see docs/checkers.md)",
        f"protocol {info.name}",
    ]
    for handler in info.handlers.values():
        lanes = " ".join(str(n) for n in handler.lane_allowance)
        suffix = " nostack" if handler.nostack else ""
        lines.append(
            f"handler {handler.name} {handler.kind} lanes {lanes}{suffix}"
        )
    for key in ("free_routines", "buffer_use_routines", "frees_if_true",
                "dir_writeback_routines"):
        directive = key[:-1] if key.endswith("s") else key
        for name in sorted(getattr(info, key)):
            lines.append(f"{directive} {name}")
    for name in sorted(info.messages):
        lines.append(f"message {name} len {info.messages[name]}")
    for opcode in sorted(info.dispatch):
        lines.append(f"dispatch {opcode} {info.dispatch[opcode]}")
    return "\n".join(lines) + "\n"


def parse_spec(text: str, filename: str = "<spec>") -> ProtocolInfo:
    """Parse spec text into a :class:`ProtocolInfo`."""
    info = ProtocolInfo()
    table_for = {
        "free_routine": "free_routines",
        "buffer_use_routine": "buffer_use_routines",
        "frees_if_true": "frees_if_true",
        "dir_writeback_routine": "dir_writeback_routines",
    }
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        directive, args = words[0], words[1:]
        where = f"{filename}:{lineno}"
        if directive == "protocol":
            if len(args) != 1:
                raise SpecError(f"{where}: protocol needs exactly one name")
            info.name = args[0]
        elif directive == "handler":
            info.handlers.update({args[0]: _parse_handler(args, where)})
        elif directive in table_for:
            if len(args) != 1:
                raise SpecError(f"{where}: {directive} needs one routine name")
            getattr(info, table_for[directive]).add(args[0])
        elif directive == "message":
            # message NAME len LEN_CONST — the protocol message listing
            # the consistency pack audits against the handler's code.
            if len(args) != 3 or args[1] != "len":
                raise SpecError(
                    f"{where}: message wants 'message NAME len LEN_CONST'")
            info.messages[args[0]] = args[2]
        elif directive == "dispatch":
            # dispatch OPCODE HANDLER — a simulator dispatch-table entry.
            if len(args) != 2:
                raise SpecError(
                    f"{where}: dispatch wants 'dispatch OPCODE HANDLER'")
            try:
                opcode = int(args[0], 0)
            except ValueError:
                raise SpecError(
                    f"{where}: dispatch opcode {args[0]!r} is not an "
                    "integer") from None
            if opcode in info.dispatch:
                raise SpecError(
                    f"{where}: dispatch opcode {opcode} registered twice")
            info.dispatch[opcode] = args[1]
        else:
            raise SpecError(f"{where}: unknown directive {directive!r}")
    return info


def _parse_handler(args: list[str], where: str) -> HandlerInfo:
    if len(args) < 2:
        raise SpecError(f"{where}: handler needs a name and a kind")
    name, kind, rest = args[0], args[1], args[2:]
    if kind not in ("hw", "sw", "proc"):
        raise SpecError(f"{where}: bad handler kind {kind!r}")
    allowance = (1,) * machine.LANE_COUNT
    nostack = False
    i = 0
    while i < len(rest):
        if rest[i] == "lanes":
            lanes = rest[i + 1:i + 1 + machine.LANE_COUNT]
            if len(lanes) != machine.LANE_COUNT:
                raise SpecError(f"{where}: lanes needs "
                                f"{machine.LANE_COUNT} counts")
            try:
                allowance = tuple(int(v) for v in lanes)
            except ValueError as exc:
                raise SpecError(f"{where}: bad lane count") from exc
            i += 1 + machine.LANE_COUNT
        elif rest[i] == "nostack":
            nostack = True
            i += 1
        else:
            raise SpecError(f"{where}: unknown handler attribute "
                            f"{rest[i]!r}")
    return HandlerInfo(name=name, kind=kind, lane_allowance=allowance,
                       nostack=nostack)
