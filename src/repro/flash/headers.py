"""``flash-includes.h`` — the C declarations generated protocol code uses.

The real FLASH protocols included a header defining the macro vocabulary;
the paper's checkers begin with ``#include "flash-includes.h"``.  Our
frontend does not run a preprocessor (macros appear as calls, exactly how
xg++ saw constant-folded code after the authors "redefined the relevant
macro constants as variables", §11), so this header declares everything
as ordinary C functions, variables and types.  Prepending it to a
protocol source file gives sema enough to type every FLASH operation.
"""

from __future__ import annotations

FLASH_INCLUDES_NAME = "flash-includes.h"

FLASH_INCLUDES = """\
/* flash-includes.h - FLASH protocol processor environment.
 * Message length constants (decoupled from the has-data send flag). */
extern unsigned LEN_NODATA;
extern unsigned LEN_WORD;
extern unsigned LEN_CACHELINE;

/* Has-data send parameter values. */
extern unsigned F_NODATA;
extern unsigned F_DATA;

/* NI_SEND type argument: request or reply virtual lane. */
extern unsigned NI_REQUEST;
extern unsigned NI_REPLY;

/* Message opcodes (a representative subset). */
extern unsigned MSG_GET;
extern unsigned MSG_PUT;
extern unsigned MSG_GETX;
extern unsigned MSG_PUTX;
extern unsigned MSG_INVAL;
extern unsigned MSG_ACK;
extern unsigned MSG_NAK;
extern unsigned MSG_UNC_READ;
extern unsigned MSG_UNC_REPLY;
extern unsigned MSG_WB;

/* The handler-global message header block. */
struct flash_net_header {
    unsigned len;
    unsigned op;
    unsigned src;
    unsigned dest;
    unsigned addr;
};
struct flash_header {
    struct flash_net_header nh;
};
struct flash_globals {
    struct flash_header header;
    unsigned dirEntry;
    unsigned buf;
};

/* HANDLER_GLOBALS(field) yields the handler-global lvalue.  Modelled as
 * a function over the field expression; checkers match it by shape. */
unsigned HANDLER_GLOBALS(unsigned field);

/* Handler prologue / simulator hooks. */
void HANDLER_DEFS(void);
void HANDLER_PROLOGUE(void);
void SWHANDLER_PROLOGUE(void);
void SUBROUTINE_PROLOGUE(void);
void SET_STACKPTR(void);
/* "No stack" assertion: exactly one, at the beginning of the handler. */
void NOSTACK(void);

/* Data buffer management (manual reference counting). */
unsigned DB_ALLOC(void);
void DB_FREE(void);
unsigned DB_IS_ERROR(unsigned buf);
void DB_INC_REFCOUNT(unsigned buf);
void WAIT_FOR_DB_FULL(unsigned addr);
unsigned MISCBUS_READ_DB(unsigned addr, unsigned off);
unsigned MISCBUS_READ(unsigned addr, unsigned off);

/* Checker annotations (suppress false positives; checkable comments). */
void has_buffer(void);
void no_free_needed(void);

/* Message sends.  PI/IO: (flag, keep, swap, wait, dec, null);
 * NI: (type, flag, keep, wait, dec, null). */
void PI_SEND(unsigned flag, unsigned keep, unsigned swap, unsigned wait,
             unsigned dec, unsigned null);
void IO_SEND(unsigned flag, unsigned keep, unsigned swap, unsigned wait,
             unsigned dec, unsigned null);
void NI_SEND(unsigned type, unsigned flag, unsigned keep, unsigned wait,
             unsigned dec, unsigned null);

/* Waits for synchronous sends. */
void WAIT_FOR_PI_REPLY(void);
void WAIT_FOR_IO_REPLY(void);
void WAIT_FOR_NI_REPLY(void);

/* Outgoing lane space check (suspends until space is available). */
void WAIT_FOR_SPACE(unsigned lane);

/* Directory entry access. */
unsigned DIR_LOAD(unsigned addr);
void DIR_WRITEBACK(unsigned addr, unsigned entry);

/* Deprecated macros (the execution-restriction checker flags these). */
void OLD_PI_SEND(unsigned flag, unsigned len);
void OLD_LEN_SET(unsigned len);

/* Debug helpers (appear in the false-positive idioms of Sec. 9). */
void DEBUG_PRINT(unsigned value);

/* Raw interface-status reads: waiting on these directly instead of the
 * WAIT_FOR_*_REPLY macros "breaks the abstraction barrier" (Sec. 9). */
unsigned PI_REPLY_READY(void);
unsigned IO_REPLY_READY(void);
unsigned NI_REPLY_READY(void);
void SPIN(void);
"""


def with_flash_includes(source: str) -> str:
    """Prepend the FLASH declarations to a protocol source string."""
    return FLASH_INCLUDES + "\n" + source
