"""FLASH machine vocabulary: the macro and constant names shared by the
generated protocol code, the checkers, and the simulator.

These mirror the names quoted in the paper (``WAIT_FOR_DB_FULL``,
``MISCBUS_READ_DB``, ``PI_SEND``/``NI_SEND``/``IO_SEND``, ``LEN_NODATA``/
``LEN_WORD``/``LEN_CACHELINE``, ``F_DATA``/``F_NODATA``,
``HANDLER_GLOBALS``, ``SET_STACKPTR``) plus the buffer-management,
directory, lane and simulator-hook operations the checkers in §6-§9 need
names for.  Where the paper does not spell a name we invent one and keep
it stable here.
"""

from __future__ import annotations

# -- message lengths and the decoupled has-data parameter (§5) --------------

LEN_NODATA = 0
LEN_WORD = 1
LEN_CACHELINE = 2

LENGTH_CONSTANTS = {
    "LEN_NODATA": LEN_NODATA,
    "LEN_WORD": LEN_WORD,
    "LEN_CACHELINE": LEN_CACHELINE,
}

F_NODATA = 0
F_DATA = 1

HAS_DATA_CONSTANTS = {"F_NODATA": F_NODATA, "F_DATA": F_DATA}

# -- send macros (§5, §7, §9) ------------------------------------------------
#
# PI_SEND(flag, keep, swap, wait, dec, null)  - to the processor interface
# IO_SEND(flag, keep, swap, wait, dec, null)  - to the I/O interface
# NI_SEND(type, flag, keep, wait, dec, null)  - to the network interface
#
# Argument positions the checkers rely on:
SEND_MACROS = ("PI_SEND", "IO_SEND", "NI_SEND")
SEND_FLAG_ARG = {"PI_SEND": 0, "IO_SEND": 0, "NI_SEND": 1}
SEND_WAIT_ARG = {"PI_SEND": 3, "IO_SEND": 3, "NI_SEND": 3}

# NI_SEND's leading ``type`` argument distinguishes request/reply traffic.
NI_TYPE_REQUEST = "NI_REQUEST"
NI_TYPE_REPLY = "NI_REPLY"

# -- network lanes (§7) --------------------------------------------------------
#
# FLASH divides the physical network into four virtual lanes.  Each send
# macro maps to a lane; NI sends split by their type argument.
LANE_PI = 0
LANE_IO = 1
LANE_NI_REQUEST = 2
LANE_NI_REPLY = 3
LANE_COUNT = 4
LANE_NAMES = ("pi", "io", "ni-request", "ni-reply")

#: Suspend until the named lane has free slots; re-establishes the
#: handler's quota on that lane (§7's "explicitly check ... and suspend").
WAIT_FOR_SPACE = "WAIT_FOR_SPACE"

# -- data buffers (§4, §6, §9) ---------------------------------------------

WAIT_FOR_DB_FULL = "WAIT_FOR_DB_FULL"
MISCBUS_READ_DB = "MISCBUS_READ_DB"
#: Older-style read macro the real checker also recognized (§4 mentions
#: "older style macros equivalent to MISCBUS_READ_DB").
MISCBUS_READ_DB_OLD = "MISCBUS_READ"

DB_ALLOC = "DB_ALLOC"
DB_FREE = "DB_FREE"
#: Allocation failure flag tested by the §9 allocation checker.
DB_IS_ERROR = "DB_IS_ERROR"

#: Checker-annotation functions (§6: "has_buffer" / "no_free_needed").
ANNOTATION_HAS_BUFFER = "has_buffer"
ANNOTATION_NO_FREE_NEEDED = "no_free_needed"

#: The "never used" manual refcount function from the §11 war story;
#: the refined checker aggressively objects to any occurrence.
DB_INC_REFCOUNT = "DB_INC_REFCOUNT"

# -- directory entries (§9) -----------------------------------------------

DIR_LOAD = "DIR_LOAD"
DIR_WRITEBACK = "DIR_WRITEBACK"
#: Directory entries live in a handler-global; field writes mark it dirty.
DIR_ENTRY_VAR = "dirEntry"

#: Speculative handlers that back out send a NAK; the checker excuses
#: their missing write-back when it sees this constant in the header (§9).
MSG_NAK = "MSG_NAK"

# -- waits (§9 send-wait) ----------------------------------------------------

WAIT_FOR_PI_REPLY = "WAIT_FOR_PI_REPLY"
WAIT_FOR_IO_REPLY = "WAIT_FOR_IO_REPLY"
WAIT_FOR_NI_REPLY = "WAIT_FOR_NI_REPLY"

WAIT_MACRO_FOR_SEND = {
    "PI_SEND": WAIT_FOR_PI_REPLY,
    "IO_SEND": WAIT_FOR_IO_REPLY,
    "NI_SEND": WAIT_FOR_NI_REPLY,
}
WAIT_MACROS = tuple(WAIT_MACRO_FOR_SEND.values())

# -- handler structure and simulator hooks (§8) ------------------------------

HANDLER_DEFS = "HANDLER_DEFS"
HANDLER_PROLOGUE = "HANDLER_PROLOGUE"
#: Hook normal (non-handler) procedures must call first.
SUBROUTINE_PROLOGUE = "SUBROUTINE_PROLOGUE"
#: Hook software handlers call instead of HANDLER_PROLOGUE's second slot.
SWHANDLER_PROLOGUE = "SWHANDLER_PROLOGUE"

SET_STACKPTR = "SET_STACKPTR"
#: The "no stack" source annotation (§8: "exactly one 'no stack'
#: annotation at the beginning of the handler").
NOSTACK = "NOSTACK"

#: Deprecated macros the §8 checker warns about.
DEPRECATED_MACROS = ("OLD_PI_SEND", "OLD_LEN_SET", "MISCBUS_READ")

#: Stack restrictions for "no stack" handlers (§8).
NOSTACK_MAX_LOCALS = 16
NOSTACK_MAX_AGGREGATE_BITS = 64

# -- HANDLER_GLOBALS fields ---------------------------------------------------

HANDLER_GLOBALS = "HANDLER_GLOBALS"
#: Spelling of the message-length lvalue as it appears in protocol code.
MSG_LEN_LVALUE = "HANDLER_GLOBALS(header.nh.len)"
MSG_OP_LVALUE = "HANDLER_GLOBALS(header.nh.op)"


def lane_of_send(callee: str, args) -> int | None:
    """Map a send call to its lane; None when the callee is not a send.

    ``args`` is the AST argument list; for ``NI_SEND`` the first argument
    (request vs reply type) picks between the two NI lanes, defaulting to
    the request lane when it is not a recognized constant.
    """
    if callee == "PI_SEND":
        return LANE_PI
    if callee == "IO_SEND":
        return LANE_IO
    if callee == "NI_SEND":
        if args:
            first = args[0]
            name = getattr(first, "name", None)
            if name == NI_TYPE_REPLY:
                return LANE_NI_REPLY
        return LANE_NI_REQUEST
    return None
