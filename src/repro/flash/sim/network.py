"""Four-lane network model (§7).

FLASH avoids message loss by only letting a handler run when its
declared allowance of output-queue slots is available, and by requiring
an explicit ``WAIT_FOR_SPACE`` before sending beyond the allowance.
This model gives each lane a bounded output queue per node; a send onto
a full lane is exactly the §7 failure ("can cause sporadic deadlocks"),
surfaced as :class:`ProtocolDeadlock`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ...errors import ProtocolDeadlock
from .. import machine as vocab


@dataclass
class Message:
    opcode: int
    addr: int
    src: int
    dest: int
    lane: int
    has_data: bool
    length: int
    payload: list = field(default_factory=list)


class OutputQueues:
    """Per-node output queues, one per virtual lane."""

    def __init__(self, node_id: int, capacity: int = 4):
        self.node_id = node_id
        self.capacity = capacity
        self.queues: list[deque] = [deque() for _ in range(vocab.LANE_COUNT)]
        self.overruns = 0

    def space(self, lane: int) -> int:
        return self.capacity - len(self.queues[lane])

    def send(self, message: Message) -> None:
        queue = self.queues[message.lane]
        if len(queue) >= self.capacity:
            self.overruns += 1
            raise ProtocolDeadlock(
                f"node {self.node_id}: output queue for lane "
                f"{vocab.LANE_NAMES[message.lane]} overran its "
                f"{self.capacity} slots (handler exceeded its allowance)"
            )
        queue.append(message)

    def drain(self) -> list[Message]:
        """Remove and return all queued messages (network delivery)."""
        out: list[Message] = []
        for queue in self.queues:
            while queue:
                out.append(queue.popleft())
        return out

    def pending(self) -> int:
        return sum(len(q) for q in self.queues)
