"""Four-lane network model (§7).

FLASH avoids message loss by only letting a handler run when its
declared allowance of output-queue slots is available, and by requiring
an explicit ``WAIT_FOR_SPACE`` before sending beyond the allowance.
This model gives each lane a bounded output queue per node; a send onto
a full lane is exactly the §7 failure ("can cause sporadic deadlocks"),
surfaced as the typed :class:`LaneOverflowError` and recorded by the
machine loop as a per-run event.

A :class:`~repro.faults.FaultInjector` can force the failure paths that
real traffic rarely produces: ``lane_overflow`` makes a send behave as
if the lane had no slot (transient backpressure), ``msg_delay`` holds a
message back so later traffic in its lane overtakes it, and ``msg_dup``
delivers a message twice — the misordering/duplication conditions the
§5/§7 checkers assume the network can produce.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from ...errors import LaneOverflowError
from .. import machine as vocab


@dataclass
class Message:
    opcode: int
    addr: int
    src: int
    dest: int
    lane: int
    has_data: bool
    length: int
    payload: list = field(default_factory=list)


class OutputQueues:
    """Per-node output queues, one per virtual lane."""

    def __init__(self, node_id: int, capacity: int = 4,
                 injector: Optional[object] = None):
        self.node_id = node_id
        self.capacity = capacity
        self.queues: list[deque] = [deque() for _ in range(vocab.LANE_COUNT)]
        self.overruns = 0
        self.injected_overflows = 0
        self.delayed_messages = 0
        self.duplicated_messages = 0
        self.injector = injector
        # Messages a ``msg_delay`` rule held back; they re-enter their
        # lane at the back of the next drain, behind later traffic.
        self._delayed: list[list[Message]] = [
            [] for _ in range(vocab.LANE_COUNT)
        ]

    def space(self, lane: int) -> int:
        return self.capacity - len(self.queues[lane])

    def send(self, message: Message) -> None:
        queue = self.queues[message.lane]
        forced = (self.injector is not None
                  and self.injector.fires("lane_overflow", lane=message.lane))
        if forced:
            self.injected_overflows += 1
        if forced or len(queue) >= self.capacity:
            self.overruns += 1
            cause = ("backpressure left no slot in"
                     if forced else "handler exceeded its allowance on")
            raise LaneOverflowError(
                f"node {self.node_id}: output queue for lane "
                f"{vocab.LANE_NAMES[message.lane]} overran its "
                f"{self.capacity} slots ({cause} the lane)",
                node=self.node_id, lane=message.lane,
            )
        if (self.injector is not None
                and self.injector.fires("msg_delay", lane=message.lane)):
            self.delayed_messages += 1
            self._delayed[message.lane].append(message)
            return
        queue.append(message)
        if (self.injector is not None
                and self.injector.fires("msg_dup", lane=message.lane)):
            self.duplicated_messages += 1
            queue.append(replace(message, payload=list(message.payload)))

    def drain(self) -> list[Message]:
        """Remove and return all queued messages (network delivery).

        Delayed messages come out after everything else in their lane —
        that *is* the reordering fault.
        """
        out: list[Message] = []
        for lane, queue in enumerate(self.queues):
            while queue:
                out.append(queue.popleft())
            if self._delayed[lane]:
                out.extend(self._delayed[lane])
                self._delayed[lane] = []
        return out

    def pending(self) -> int:
        return (sum(len(q) for q in self.queues)
                + sum(len(d) for d in self._delayed))
