"""AST interpreter for generated protocol code.

FlashLite ran the real protocol C on a simulated MAGIC; this interpreter
plays that role for our substrate: it executes handler
:class:`FunctionDef` bodies directly from the frontend's AST, with the
FLASH macro vocabulary supplied as builtin callables by the node model
(:mod:`repro.flash.sim.node`).

Semantics: 32-bit unsigned arithmetic, C truthiness, short-circuit
``&&``/``||``, lexically scoped locals, calls into other program
functions, and the ``HANDLER_GLOBALS(field)`` pseudo-macro resolved as a
read or write of the node's handler-global block.  A step budget guards
against runaway loops (generated code always terminates, but the
interpreter is also exercised on adversarial inputs in tests).
"""

from __future__ import annotations

from typing import Callable, Optional

from ...errors import InterpError
from ...lang import ast

MASK32 = 0xFFFFFFFF


class _Return(Exception):
    def __init__(self, value: int = 0):
        self.value = value


class _Goto(Exception):
    def __init__(self, label: str):
        self.label = label


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _path_of(expr: ast.Expr) -> str:
    """Render the HANDLER_GLOBALS argument (``header.nh.len``) as a path."""
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Member):
        return f"{_path_of(expr.base)}.{expr.name}"
    raise InterpError(f"unsupported HANDLER_GLOBALS field: {expr.kind}")


class GlobalsView:
    """Read/write access to the handler-global block (override per node)."""

    def __init__(self) -> None:
        self.fields: dict[str, int] = {}

    def read(self, path: str) -> int:
        return self.fields.get(path, 0)

    def write(self, path: str, value: int) -> None:
        self.fields[path] = value & MASK32


class Interpreter:
    """Executes functions from one parsed program."""

    def __init__(
        self,
        functions: dict[str, ast.FunctionDef],
        builtins: Optional[dict[str, Callable]] = None,
        constants: Optional[dict[str, int]] = None,
        handler_globals: Optional[GlobalsView] = None,
        max_steps: int = 1_000_000,
        max_depth: int = 64,
        tick_hook: Optional[Callable[[ast.Node], None]] = None,
    ):
        self.functions = functions
        self.builtins = dict(builtins or {})
        self.constants = dict(constants or {})
        self.globals = handler_globals if handler_globals is not None else GlobalsView()
        self.max_steps = max_steps
        self.max_depth = max_depth
        #: Called once per executed statement/expression — the
        #: simulator's cycle clock.  A fault injector installs itself
        #: here to support cycle-window triggers and ``handler_crash``
        #: rules (which raise out of the hook).
        self.tick_hook = tick_hook
        #: Names of program functions this interpreter has executed, in
        #: first-execution order.  Campaign cross-tabulation uses this to
        #: decide whether a statically-reported function was actually
        #: exercised by a run (a report in dead-for-this-workload code
        #: cannot be dynamically confirmed).
        self.executed: dict[str, int] = {}
        self._steps = 0
        self._depth = 0

    # -- public API ----------------------------------------------------------

    def call(self, name: str, args: Optional[list[int]] = None) -> int:
        """Call a program function (or builtin) by name."""
        args = args or []
        if name in self.functions:
            return self._call_function(self.functions[name], args)
        if name in self.builtins:
            return self._as_int(self.builtins[name](*args))
        raise InterpError(f"undefined function {name!r}")

    def reset_steps(self) -> None:
        self._steps = 0

    # -- function invocation ----------------------------------------------------

    def _call_function(self, func: ast.FunctionDef, args: list[int]) -> int:
        if self._depth >= self.max_depth:
            raise InterpError(f"call depth exceeded in {func.name}")
        self.executed[func.name] = self.executed.get(func.name, 0) + 1
        frame: dict[str, int] = {}
        for param, value in zip(func.params, args):
            if param.name:
                frame[param.name] = value & MASK32
        labels = {
            stmt.name: i
            for i, stmt in enumerate(func.body.stmts)
            if isinstance(stmt, ast.Label)
        }
        self._depth += 1
        start = 0
        try:
            while True:
                try:
                    for stmt in func.body.stmts[start:]:
                        self._exec_stmt(stmt, frame)
                    return 0
                except _Goto as jump:
                    # Only function-top-level labels are supported (the
                    # common ``goto out; ... out: cleanup`` error-exit
                    # idiom); jumping into nested blocks is rejected.
                    if jump.label not in labels:
                        raise InterpError(
                            f"goto to non-top-level label {jump.label!r} "
                            f"in {func.name}"
                        ) from None
                    self._tick(func.body)
                    start = labels[jump.label]
        except _Return as ret:
            return ret.value
        finally:
            self._depth -= 1

    # -- statements -------------------------------------------------------------

    def _tick(self, node: ast.Node) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpError(
                f"step budget exhausted at {node.location}"
            )
        if self.tick_hook is not None:
            self.tick_hook(node)

    def _exec_block(self, block: ast.Block, frame: dict) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: ast.Stmt, frame: dict) -> None:
        self._tick(stmt)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                value = 0
                if decl.init is not None:
                    value = self._eval(decl.init, frame)
                frame[decl.name] = value & MASK32
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond, frame):
                self._exec_stmt(stmt.then, frame)
            elif stmt.otherwise is not None:
                self._exec_stmt(stmt.otherwise, frame)
        elif isinstance(stmt, ast.While):
            while self._eval(stmt.cond, frame):
                self._tick(stmt)
                try:
                    self._exec_stmt(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick(stmt)
                try:
                    self._exec_stmt(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._eval(stmt.cond, frame):
                    break
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.init, ast.DeclStmt):
                self._exec_stmt(stmt.init, frame)
            elif isinstance(stmt.init, ast.Expr):
                self._eval(stmt.init, frame)
            while stmt.cond is None or self._eval(stmt.cond, frame):
                self._tick(stmt)
                try:
                    self._exec_stmt(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, frame)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, frame)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) if stmt.value is not None else 0
            raise _Return(value)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, (ast.EmptyStmt, ast.Label)):
            pass
        elif isinstance(stmt, ast.Goto):
            raise _Goto(stmt.label)
        elif isinstance(stmt, (ast.Case, ast.Default)):
            pass
        else:
            raise InterpError(f"cannot execute {stmt.kind}")

    def _exec_switch(self, stmt: ast.Switch, frame: dict) -> None:
        selector = self._eval(stmt.cond, frame)
        stmts = stmt.body.stmts
        start: Optional[int] = None
        default_at: Optional[int] = None
        for i, child in enumerate(stmts):
            if isinstance(child, ast.Case):
                if self._eval(child.value, frame) == selector and start is None:
                    start = i
            elif isinstance(child, ast.Default) and default_at is None:
                default_at = i
        if start is None:
            start = default_at
        if start is None:
            return
        try:
            for child in stmts[start:]:
                self._exec_stmt(child, frame)
        except _Break:
            pass

    # -- expressions ----------------------------------------------------------

    def _as_int(self, value) -> int:
        if value is None or value is False:
            return 0
        if value is True:
            return 1
        return int(value) & MASK32

    def _eval(self, expr: ast.Expr, frame: dict) -> int:
        self._tick(expr)
        if isinstance(expr, ast.IntLit):
            return expr.value & MASK32
        if isinstance(expr, ast.CharLit):
            body = expr.text[1:-1]
            return (ord(body[-1]) if body else 0) & MASK32
        if isinstance(expr, ast.FloatLit):
            raise InterpError(
                f"floating point is not available on the protocol "
                f"processor ({expr.location})"
            )
        if isinstance(expr, ast.StringLit):
            return 0
        if isinstance(expr, ast.Ident):
            return self._read_name(expr, frame)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, frame)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, frame)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr, frame)
        if isinstance(expr, ast.PostfixOp):
            old = self._eval(expr.operand, frame)
            delta = 1 if expr.op == "++" else -1
            self._store(expr.operand, (old + delta) & MASK32, frame)
            return old
        if isinstance(expr, ast.Ternary):
            if self._eval(expr.cond, frame):
                return self._eval(expr.then, frame)
            return self._eval(expr.otherwise, frame)
        if isinstance(expr, ast.Call):
            return self._call_expr(expr, frame)
        if isinstance(expr, ast.Cast):
            return self._eval(expr.operand, frame)
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            return 4
        if isinstance(expr, ast.Comma):
            value = 0
            for part in expr.parts:
                value = self._eval(part, frame)
            return value
        raise InterpError(f"cannot evaluate {expr.kind} at {expr.location}")

    def _read_name(self, expr: ast.Ident, frame: dict) -> int:
        name = expr.name
        if name in frame:
            return frame[name]
        if name in self.constants:
            return self.constants[name] & MASK32
        raise InterpError(f"undefined variable {name!r} at {expr.location}")

    def _assign(self, expr: ast.Assign, frame: dict) -> int:
        if expr.op == "=":
            value = self._eval(expr.value, frame)
        else:
            current = self._eval(expr.target, frame)
            rhs = self._eval(expr.value, frame)
            value = self._apply_op(expr.op[:-1], current, rhs, expr)
        self._store(expr.target, value, frame)
        return value

    def _store(self, target: ast.Expr, value: int, frame: dict) -> None:
        value &= MASK32
        if isinstance(target, ast.Ident):
            frame[target.name] = value
            return
        if (isinstance(target, ast.Call)
                and target.callee_name == "HANDLER_GLOBALS" and target.args):
            self.globals.write(_path_of(target.args[0]), value)
            return
        raise InterpError(f"unsupported assignment target {target.kind} at "
                          f"{target.location}")

    def _binary(self, expr: ast.BinaryOp, frame: dict) -> int:
        if expr.op == "&&":
            return 1 if (self._eval(expr.left, frame)
                         and self._eval(expr.right, frame)) else 0
        if expr.op == "||":
            return 1 if (self._eval(expr.left, frame)
                         or self._eval(expr.right, frame)) else 0
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        return self._apply_op(expr.op, left, right, expr)

    def _apply_op(self, op: str, left: int, right: int, expr: ast.Expr) -> int:
        if op == "+":
            return (left + right) & MASK32
        if op == "-":
            return (left - right) & MASK32
        if op == "*":
            return (left * right) & MASK32
        if op == "/":
            if right == 0:
                raise InterpError(f"division by zero at {expr.location}")
            return (left // right) & MASK32
        if op == "%":
            if right == 0:
                raise InterpError(f"modulo by zero at {expr.location}")
            return (left % right) & MASK32
        if op == "<<":
            return (left << (right & 31)) & MASK32
        if op == ">>":
            return (left >> (right & 31)) & MASK32
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        raise InterpError(f"unsupported operator {op!r} at {expr.location}")

    def _unary(self, expr: ast.UnaryOp, frame: dict) -> int:
        if expr.op == "!":
            return int(not self._eval(expr.operand, frame))
        if expr.op == "-":
            return (-self._eval(expr.operand, frame)) & MASK32
        if expr.op == "+":
            return self._eval(expr.operand, frame)
        if expr.op == "~":
            return (~self._eval(expr.operand, frame)) & MASK32
        if expr.op in ("++", "--"):
            old = self._eval(expr.operand, frame)
            delta = 1 if expr.op == "++" else -1
            new = (old + delta) & MASK32
            self._store(expr.operand, new, frame)
            return new
        raise InterpError(f"unsupported unary {expr.op!r} at {expr.location}")

    def _call_expr(self, expr: ast.Call, frame: dict) -> int:
        name = expr.callee_name
        if name is None:
            raise InterpError(f"indirect calls unsupported at {expr.location}")
        if name == "HANDLER_GLOBALS":
            if not expr.args:
                raise InterpError(f"HANDLER_GLOBALS needs a field at "
                                  f"{expr.location}")
            return self.globals.read(_path_of(expr.args[0]))
        args = [self._eval(arg, frame) for arg in expr.args]
        if name in self.builtins:
            return self._as_int(self.builtins[name](*args))
        if name in self.functions:
            return self._call_function(self.functions[name], args)
        raise InterpError(f"call to undefined {name!r} at {expr.location}")
