"""Per-node directory state (§9's "manual directory entry updates").

Each node's MAGIC chip owns the directory entries for the cache lines it
is home to.  Handlers must explicitly load an entry into the handler
globals, modify it there, and write it back; a forgotten write-back
leaves the in-memory entry stale, which this model makes observable as
``stale_entries``.
"""

from __future__ import annotations


class Directory:
    """Address -> directory-entry word, plus staleness accounting."""

    def __init__(self) -> None:
        self._entries: dict[int, int] = {}
        #: (addr, written) pairs for entries loaded but never written back
        #: despite modification - the dynamic shadow of the §9 checker.
        self.stale_writebacks = 0
        self._loaded: dict[int, int] = {}  # addr -> value at load time

    def load(self, addr: int) -> int:
        value = self._entries.get(addr, 0)
        self._loaded[addr] = value
        return value

    def writeback(self, addr: int, value: int) -> None:
        self._entries[addr] = value
        self._loaded.pop(addr, None)

    def entry(self, addr: int) -> int:
        return self._entries.get(addr, 0)

    def note_modified_without_writeback(self, addr: int) -> None:
        """Called by the node when a handler retires with a dirty entry."""
        self.stale_writebacks += 1
        self._loaded.pop(addr, None)
