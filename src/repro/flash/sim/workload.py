"""Synthetic coherence workloads for the simulator.

The paper's buffer bugs "show up sporadically only after days of
continuous use"; a workload is simply a long, seeded stream of incoming
coherence messages whose opcodes select handlers.  Rare opcodes model
the corner-case traffic (uncached reads, eager mode) that the buggy
handlers serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator

from .network import Message


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic message stream."""

    messages: int = 1000
    nodes: int = 2
    address_space: int = 1 << 12
    seed: int = 7
    #: opcode -> relative weight; opcodes absent from the dispatch table
    #: are skipped by the machine.
    opcode_weights: tuple = ((1, 10), (2, 10), (3, 6), (4, 4), (5, 2))


def generate(spec: WorkloadSpec) -> Iterator[Message]:
    """Yield the message stream for ``spec`` (deterministic)."""
    rng = Random(spec.seed)
    opcodes = [op for op, _w in spec.opcode_weights]
    weights = [w for _op, w in spec.opcode_weights]
    for i in range(spec.messages):
        opcode = rng.choices(opcodes, weights=weights)[0]
        addr = rng.randrange(0, spec.address_space, 8)
        dest = i % spec.nodes
        yield Message(
            opcode=opcode, addr=addr, src=(dest + 1) % spec.nodes,
            dest=dest, lane=0, has_data=False, length=0,
        )
