"""One FLASH node: MAGIC state + handler dispatch.

Binds the FLASH macro vocabulary to this node's buffer pool, directory,
and output queues, then executes protocol handlers through the AST
interpreter.  All the failure modes the paper's checkers target are
observable dynamically:

- §4 races: reads before ``WAIT_FOR_DB_FULL`` return garbage and bump
  ``pool.unsynchronized_reads``;
- §5 length bugs: a send whose has-data flag disagrees with the header
  length bumps ``msglen_mismatches`` (corrupt transfer size);
- §6 refcount bugs: double frees raise / count, leaks shrink the pool
  until an arriving message finds no buffer (deadlock);
- §7 lane overruns: sends beyond the output queue capacity deadlock;
- §9 send-wait and directory bugs: handlers that never wait bump
  ``pending_wait_violations``; dirty entries never written back bump
  ``directory.stale_writebacks``.
"""

from __future__ import annotations

from typing import Optional

from ...errors import InjectedFault, ProtocolDeadlock
from ...lang import ast
from .. import machine as vocab
from .buffers import BufferPool, DataBuffer
from .directory import Directory
from .interp import GlobalsView, Interpreter
from .network import Message, OutputQueues

#: Constant environment shared by all nodes.
CONSTANTS = {
    "LEN_NODATA": vocab.LEN_NODATA,
    "LEN_WORD": vocab.LEN_WORD,
    "LEN_CACHELINE": vocab.LEN_CACHELINE,
    "F_NODATA": vocab.F_NODATA,
    "F_DATA": vocab.F_DATA,
    "NI_REQUEST": 0,
    "NI_REPLY": 1,
    "LANE_PI": vocab.LANE_PI,
    "LANE_IO": vocab.LANE_IO,
    "LANE_NI_REQUEST": vocab.LANE_NI_REQUEST,
    "LANE_NI_REPLY": vocab.LANE_NI_REPLY,
    "MSG_GET": 1, "MSG_PUT": 2, "MSG_GETX": 3, "MSG_PUTX": 4,
    "MSG_INVAL": 5, "MSG_ACK": 6, "MSG_NAK": 7, "MSG_UNC_READ": 8,
    "MSG_UNC_REPLY": 9, "MSG_WB": 10,
}


class _NodeGlobals(GlobalsView):
    """Handler globals with a dirty bit on the directory entry."""

    def __init__(self, node: "Node"):
        super().__init__()
        self.node = node

    def write(self, path: str, value: int) -> None:
        if path == "dirEntry" and self.node.dir_loaded_addr is not None:
            # The store that lands the DIR_LOAD result is the load
            # itself, not a modification.
            if self.node._expect_load_store:
                self.node._expect_load_store = False
            else:
                self.node.dir_dirty = True
        super().write(path, value)


class Node:
    """One FLASH node (processor + MAGIC + memory slice)."""

    def __init__(self, node_id: int, functions: dict[str, ast.FunctionDef],
                 n_buffers: int = 16, lane_capacity: int = 8,
                 strict: bool = False, injector=None):
        self.node_id = node_id
        self.injector = injector
        self.pool = BufferPool(n_buffers, injector=injector)
        self.pool.strict = strict
        self.directory = Directory()
        self.queues = OutputQueues(node_id, capacity=lane_capacity,
                                   injector=injector)
        self.globals = _NodeGlobals(self)
        self.strict = strict

        self.current_buffer: Optional[DataBuffer] = None
        self.pending_wait: Optional[str] = None
        self.dir_loaded_addr: Optional[int] = None
        self.dir_dirty = False
        self._expect_load_store = False
        self._drained: list[Message] = []

        self.handlers_run = 0
        self.msglen_mismatches = 0
        self.pending_wait_violations = 0
        self.sends = 0

        self.interp = Interpreter(
            functions,
            builtins=self._builtins(),
            constants=CONSTANTS,
            handler_globals=self.globals,
            tick_hook=injector.tick if injector is not None else None,
        )

    # -- builtin bindings -----------------------------------------------------

    def _builtins(self) -> dict:
        noop = lambda *a: 0
        return {
            "HANDLER_DEFS": noop, "HANDLER_PROLOGUE": noop,
            "SWHANDLER_PROLOGUE": noop, "SUBROUTINE_PROLOGUE": noop,
            "SET_STACKPTR": noop, "DEBUG_PRINT": noop, "SPIN": noop,
            "NOSTACK": noop,
            "FATAL_ERROR": self._fatal,
            "has_buffer": noop, "no_free_needed": noop,
            "DB_ALLOC": self._db_alloc,
            "DB_FREE": self._db_free,
            "DB_IS_ERROR": lambda v: int(v == 0),
            "DB_INC_REFCOUNT": self._db_inc,
            "WAIT_FOR_DB_FULL": self._wait_db_full,
            "MISCBUS_READ_DB": self._read_db,
            "MISCBUS_READ": self._read_db,
            "PI_SEND": self._make_send("PI_SEND"),
            "IO_SEND": self._make_send("IO_SEND"),
            "NI_SEND": self._make_send("NI_SEND"),
            "WAIT_FOR_PI_REPLY": self._make_wait("PI"),
            "WAIT_FOR_IO_REPLY": self._make_wait("IO"),
            "WAIT_FOR_NI_REPLY": self._make_wait("NI"),
            "PI_REPLY_READY": self._make_ready("PI"),
            "IO_REPLY_READY": self._make_ready("IO"),
            "NI_REPLY_READY": self._make_ready("NI"),
            "WAIT_FOR_SPACE": self._wait_for_space,
            "DIR_LOAD": self._dir_load,
            "DIR_WRITEBACK": self._dir_writeback,
        }

    def _fatal(self, *args) -> int:
        raise ProtocolDeadlock(f"node {self.node_id}: FATAL_ERROR() reached")

    def _db_alloc(self) -> int:
        buf = self.pool.allocate()
        if buf is None:
            # The hardware hands back a null buffer pointer; handlers
            # that skip the DB_IS_ERROR check then operate through it —
            # the §9 alloc-fail bug class made observable (reads count
            # as wild derefs, frees as double frees).
            self.current_buffer = None
            return 0
        # Overwriting the current buffer pointer without freeing leaks the
        # old buffer (paper §6, failure mode 1).
        self.current_buffer = buf
        buf.filled = True
        return buf.index + 1

    def _db_free(self, *args) -> int:
        self.pool.free(self.current_buffer)
        return 0

    def _db_inc(self, *_args) -> int:
        if self.current_buffer is not None:
            self.pool.inc_refcount(self.current_buffer)
        return 0

    def _wait_db_full(self, _addr=0) -> int:
        if self.current_buffer is not None:
            self.pool.complete_fill(self.current_buffer)
        return 0

    def _read_db(self, _addr=0, offset=0) -> int:
        return self.pool.read(self.current_buffer, offset)

    def _make_send(self, macro: str):
        def send(*args) -> int:
            flag_index = vocab.SEND_FLAG_ARG[macro]
            wait_index = vocab.SEND_WAIT_ARG[macro]
            has_data = bool(args[flag_index]) if flag_index < len(args) else False
            wait = bool(args[wait_index]) if wait_index < len(args) else False
            if macro == "NI_SEND":
                lane = (vocab.LANE_NI_REPLY if args and args[0] == 1
                        else vocab.LANE_NI_REQUEST)
                iface = "NI"
            elif macro == "IO_SEND":
                lane, iface = vocab.LANE_IO, "IO"
            else:
                lane, iface = vocab.LANE_PI, "PI"
            length = self.globals.read("header.nh.len")
            if has_data != (length != vocab.LEN_NODATA):
                # §5: the interface would transfer the wrong amount of data.
                self.msglen_mismatches += 1
            message = Message(
                opcode=self.globals.read("header.nh.op"),
                addr=self.globals.read("header.nh.addr"),
                src=self.node_id,
                dest=self.globals.read("header.nh.dest"),
                lane=lane,
                has_data=has_data,
                length=length,
                payload=[1, 2, 3, 4] if has_data else [],
            )
            self.queues.send(message)
            self.sends += 1
            if wait:
                if self.pending_wait is not None:
                    self.pending_wait_violations += 1
                self.pending_wait = iface
            return 0
        return send

    def _make_wait(self, iface: str):
        def wait() -> int:
            if self.pending_wait == iface:
                self.pending_wait = None
            elif self.pending_wait is not None:
                # Waiting on the wrong interface: the expected reply is
                # never consumed (dynamically this hangs; we count it).
                self.pending_wait_violations += 1
                self.pending_wait = None
            return 0
        return wait

    def _make_ready(self, iface: str):
        def ready() -> int:
            # The raw status register: polling it really does observe the
            # reply (which is why §9's spin idiom is a false positive).
            if self.pending_wait == iface:
                self.pending_wait = None
            return 1
        return ready

    def _wait_for_space(self, lane: int = 0) -> int:
        # Waiting lets the network drain this lane.
        drained = list(self.queues.queues[lane])
        self.queues.queues[lane].clear()
        self._drained.extend(drained)
        return 0

    def _dir_load(self, addr: int = 0) -> int:
        if self.dir_dirty and self.dir_loaded_addr is not None:
            self.directory.note_modified_without_writeback(self.dir_loaded_addr)
        self.dir_loaded_addr = addr
        self.dir_dirty = False
        self._expect_load_store = True
        return self.directory.load(addr)

    def _dir_writeback(self, addr: int = 0, value: int = 0) -> int:
        self.directory.writeback(addr, value)
        self.dir_dirty = False
        self.dir_loaded_addr = None
        return 0

    # -- message handling ---------------------------------------------------------

    def run_handler(self, handler: str, message: Message) -> list[Message]:
        """Run one handler for an incoming message; returns sent messages."""
        if self.injector is not None:
            self.injector.begin_handler(self.node_id, handler)
        injected_before = self.pool.injected_alloc_failures
        buf = self.pool.hw_allocate(fill_data=message.payload or [0])
        if buf is None:
            if self.pool.injected_alloc_failures > injected_before:
                # A fault-plan rule, not a drained pool: the incoming
                # message is dropped (NAKed by hardware), the run goes on.
                raise InjectedFault(
                    f"node {self.node_id}: injected allocation failure for "
                    f"incoming message (handler {handler})",
                    kind="dropped_message",
                )
            raise ProtocolDeadlock(
                f"node {self.node_id}: no data buffer for incoming message "
                f"(pool drained by leaks after {self.handlers_run} handlers)"
            )
        self.current_buffer = buf
        self.pending_wait = None
        self.dir_loaded_addr = None
        self.dir_dirty = False
        self._expect_load_store = False
        self._drained: list[Message] = []
        self.globals.write("header.nh.op", message.opcode)
        self.globals.write("header.nh.addr", message.addr)
        self.globals.write("header.nh.len", message.length)
        self.globals.write("header.nh.src", message.src)
        self.globals.write("header.nh.dest", (self.node_id + 1) % 64)

        self.interp.reset_steps()
        self.interp.call(handler)
        self.handlers_run += 1

        if self.pending_wait is not None:
            self.pending_wait_violations += 1
            if self.strict:
                raise ProtocolDeadlock(
                    f"node {self.node_id}: handler {handler} set the wait "
                    f"bit for {self.pending_wait} and never waited"
                )
            self.pending_wait = None
        if self.dir_dirty and self.dir_loaded_addr is not None:
            self.directory.note_modified_without_writeback(self.dir_loaded_addr)
        outgoing = self._drained + self.queues.drain()
        self.current_buffer = None
        if self.injector is not None:
            self.injector.end_handler()
        return outgoing

    def abort_handler(self) -> None:
        """Reclaim per-handler state after a handler died mid-run.

        Called by the machine loop when a send overran its lane or a
        fault plan crashed the handler: the hardware reclaims the data
        buffer, and the aborted handler's queued output is discarded.
        """
        if self.current_buffer is not None:
            self.current_buffer.refcount = 0
        self.current_buffer = None
        self.pending_wait = None
        self.dir_loaded_addr = None
        self.dir_dirty = False
        self._expect_load_store = False
        self._drained = []
        for queue in self.queues.queues:
            queue.clear()
        if self.injector is not None:
            self.injector.end_handler()
