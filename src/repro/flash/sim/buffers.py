"""Data-buffer pool with manual reference counting (§6 of the paper).

The MAGIC hardware allocates a buffer for every incoming message,
increments its reference count, and jumps to the handler; the handler
must decrement the count when done.  The pool detects at run time the
three §6 failure modes the static checker hunts for: double frees,
use-after-free, and leaks (which drain the pool until the node can no
longer accept messages — the "deadlocks only after several days" bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...errors import BufferAccounting, DoubleFreeError, RefcountError


@dataclass
class DataBuffer:
    index: int
    refcount: int = 0
    filled: bool = False
    data: list = field(default_factory=lambda: [0] * 32)
    generation: int = 0

    @property
    def live(self) -> bool:
        return self.refcount > 0


class BufferPool:
    """Fixed-size pool of data buffers for one node."""

    def __init__(self, size: int = 16, injector: Optional[object] = None):
        self.buffers = [DataBuffer(i) for i in range(size)]
        self.double_frees = 0
        self.use_after_free = 0
        self.unsynchronized_reads = 0
        self.allocation_failures = 0
        self.refcount_errors = 0
        self.injected_alloc_failures = 0
        self.strict = True
        #: Optional :class:`repro.faults.FaultInjector`; when a rule for
        #: ``hw_alloc_fail``/``alloc_fail`` fires, the pool behaves
        #: exactly as if it were dry.
        self.injector = injector

    def _injected(self, site: str) -> bool:
        if self.injector is not None and self.injector.fires(site):
            self.allocation_failures += 1
            self.injected_alloc_failures += 1
            return True
        return False

    # -- hardware-side operations ------------------------------------------

    def hw_allocate(self, fill_data: list | None = None) -> DataBuffer | None:
        """Allocate for an arriving message; None when the pool is dry."""
        if self._injected("hw_alloc_fail"):
            return None
        buf = self._find_free()
        if buf is None:
            self.allocation_failures += 1
            return None
        buf.refcount = 1
        buf.generation += 1
        buf.filled = False
        if fill_data is not None:
            buf.data = list(fill_data) + [0] * (32 - len(fill_data))
        return buf

    def _find_free(self) -> DataBuffer | None:
        for buf in self.buffers:
            if not buf.live:
                return buf
        return None

    def complete_fill(self, buf: DataBuffer) -> None:
        buf.filled = True

    # -- handler-side operations -------------------------------------------

    def allocate(self) -> DataBuffer | None:
        """Handler-requested allocation (DB_ALLOC); can fail."""
        if self._injected("alloc_fail"):
            return None
        return self.hw_allocate(fill_data=[0] * 32)

    def free(self, buf: DataBuffer | None) -> None:
        """Decrement the reference count (DB_FREE)."""
        if buf is None or buf.refcount <= 0:
            self.double_frees += 1
            if buf is not None and buf.refcount < 0:
                # A count below zero means an earlier violation went
                # unrecorded; that is a pool-invariant breach, not just
                # a protocol bug, so it is fatal even in lenient mode.
                raise RefcountError(
                    f"buffer {buf.index} reference count is negative "
                    f"({buf.refcount})"
                )
            if self.strict:
                raise DoubleFreeError(
                    "double free: buffer reference count already zero"
                )
            return
        buf.refcount -= 1

    def inc_refcount(self, buf: DataBuffer) -> None:
        if not buf.live:
            # Bumping a dead buffer would resurrect a freed buffer and
            # corrupt the free list on the real machine.
            self.refcount_errors += 1
            if self.strict:
                raise RefcountError(
                    f"refcount bump on dead buffer {buf.index}"
                )
            return
        buf.refcount += 1

    def read(self, buf: DataBuffer | None, offset: int,
             expected_generation: int | None = None) -> int:
        """MISCBUS_READ_DB: flags races and use-after-free."""
        if buf is None or not buf.live or (
                expected_generation is not None
                and buf.generation != expected_generation):
            self.use_after_free += 1
            if self.strict:
                raise BufferAccounting("read of a freed data buffer")
            return 0xDEAD
        if not buf.filled:
            # The §4 race: the hardware has not finished the fill, so the
            # handler observes stale bytes.
            self.unsynchronized_reads += 1
            return 0xDEAD
        return buf.data[(offset // 4) % len(buf.data)]

    # -- accounting ---------------------------------------------------------

    @property
    def free_count(self) -> int:
        return sum(1 for b in self.buffers if not b.live)

    @property
    def live_count(self) -> int:
        return len(self.buffers) - self.free_count

    def leak_count(self, outstanding_ok: int = 0) -> int:
        """Buffers still live beyond what the caller says is legitimate."""
        return max(self.live_count - outstanding_ok, 0)
