"""The multi-node FLASH machine (FlashLite-lite).

Drives a set of :class:`Node` objects with a workload: each injected
message dispatches the handler registered for its opcode; messages the
handler sends are delivered to their destination nodes, which run
handlers for them in turn (bounded by a hop limit so buggy protocols
cannot ping-pong forever).  The run either completes with statistics or
raises :class:`ProtocolDeadlock` — the same observable the real FLASH
team spent days chasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...errors import ProtocolDeadlock
from ...lang import ast
from .network import Message
from .node import Node
from .workload import WorkloadSpec, generate


@dataclass
class SimStats:
    """Aggregated observations from one simulation run."""

    handlers_run: int = 0
    sends: int = 0
    double_frees: int = 0
    use_after_free: int = 0
    unsynchronized_reads: int = 0
    msglen_mismatches: int = 0
    pending_wait_violations: int = 0
    stale_directory_writebacks: int = 0
    lane_overruns: int = 0
    leaked_buffers: int = 0
    deadlock: Optional[str] = None

    @property
    def clean(self) -> bool:
        return (self.deadlock is None and self.double_frees == 0
                and self.use_after_free == 0
                and self.unsynchronized_reads == 0
                and self.msglen_mismatches == 0
                and self.pending_wait_violations == 0
                and self.stale_directory_writebacks == 0
                and self.leaked_buffers == 0)


class FlashMachine:
    """A small FLASH machine running one protocol's handlers."""

    def __init__(self, functions: dict[str, ast.FunctionDef],
                 dispatch: dict[int, str], nodes: int = 2,
                 n_buffers: int = 16, lane_capacity: int = 8,
                 strict: bool = False, max_hops: int = 4):
        self.dispatch = dispatch
        self.max_hops = max_hops
        self.nodes = [
            Node(i, functions, n_buffers=n_buffers,
                 lane_capacity=lane_capacity, strict=strict)
            for i in range(nodes)
        ]

    def run(self, spec: WorkloadSpec) -> SimStats:
        """Run the workload to completion (or deadlock)."""
        stats = SimStats()
        try:
            for message in generate(spec):
                self._deliver(message, hops=0)
        except ProtocolDeadlock as deadlock:
            stats.deadlock = str(deadlock)
        self._collect(stats)
        return stats

    def _deliver(self, message: Message, hops: int) -> None:
        handler = self.dispatch.get(message.opcode)
        if handler is None:
            return
        node = self.nodes[message.dest % len(self.nodes)]
        outgoing = node.run_handler(handler, message)
        if hops >= self.max_hops:
            return
        for reply in outgoing:
            reply.dest = reply.dest % len(self.nodes)
            self._deliver(reply, hops + 1)

    def _collect(self, stats: SimStats) -> None:
        for node in self.nodes:
            stats.handlers_run += node.handlers_run
            stats.sends += node.sends
            stats.double_frees += node.pool.double_frees
            stats.use_after_free += node.pool.use_after_free
            stats.unsynchronized_reads += node.pool.unsynchronized_reads
            stats.msglen_mismatches += node.msglen_mismatches
            stats.pending_wait_violations += node.pending_wait_violations
            stats.stale_directory_writebacks += node.directory.stale_writebacks
            stats.lane_overruns += node.queues.overruns
            stats.leaked_buffers += node.pool.live_count
