"""The multi-node FLASH machine (FlashLite-lite).

Drives a set of :class:`Node` objects with a workload: each injected
message dispatches the handler registered for its opcode; messages the
handler sends are delivered to their destination nodes, which run
handlers for them in turn (bounded by a hop limit so buggy protocols
cannot ping-pong forever).  The run either completes with statistics or
raises :class:`ProtocolDeadlock` — the same observable the real FLASH
team spent days chasing.

Two classes of mid-handler failures are *recorded* rather than fatal
(they end one handler, not the run):

- :class:`LaneOverflowError` — a send overran its lane's bounded queue
  (§7); the handler aborts and the event is counted in
  ``SimStats.lane_overflow_events`` (in ``strict`` mode it still ends
  the run, like the real machine wedging);
- :class:`InjectedFault` — a :class:`~repro.faults.FaultPlan` rule
  deliberately crashed the handler or dropped its incoming message.

Pass ``fault_plan=`` to force failure paths (allocation failure, lane
backpressure, message delay/duplication) deterministically; the firing
log lands in ``SimStats.fault_events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...errors import InjectedFault, LaneOverflowError, ProtocolDeadlock
from ...faults import FaultInjector, FaultPlan
from ...lang import ast
from .network import Message
from .node import Node
from .workload import WorkloadSpec, generate


@dataclass
class SimStats:
    """Aggregated observations from one simulation run."""

    handlers_run: int = 0
    sends: int = 0
    double_frees: int = 0
    use_after_free: int = 0
    unsynchronized_reads: int = 0
    msglen_mismatches: int = 0
    pending_wait_violations: int = 0
    stale_directory_writebacks: int = 0
    lane_overruns: int = 0
    refcount_errors: int = 0
    leaked_buffers: int = 0
    deadlock: Optional[str] = None
    #: Handlers aborted because a send overran its lane (recorded, not fatal).
    lane_overflow_events: int = 0
    #: Handlers aborted / messages dropped by the fault plan.
    injected_crashes: int = 0
    dropped_messages: int = 0
    #: Every fault-plan firing, in order (strings; deterministic per seed).
    fault_events: list = field(default_factory=list)
    #: Firing counts keyed by injection site.
    faults_by_site: dict = field(default_factory=dict)

    @property
    def injected_faults(self) -> int:
        return len(self.fault_events)

    @property
    def clean(self) -> bool:
        return (self.deadlock is None and self.double_frees == 0
                and self.use_after_free == 0
                and self.unsynchronized_reads == 0
                and self.msglen_mismatches == 0
                and self.pending_wait_violations == 0
                and self.stale_directory_writebacks == 0
                and self.lane_overruns == 0
                and self.refcount_errors == 0
                and self.leaked_buffers == 0)


class FlashMachine:
    """A small FLASH machine running one protocol's handlers."""

    def __init__(self, functions: dict[str, ast.FunctionDef],
                 dispatch: dict[int, str], nodes: int = 2,
                 n_buffers: int = 16, lane_capacity: int = 8,
                 strict: bool = False, max_hops: int = 4,
                 fault_plan: Optional[FaultPlan] = None):
        self.dispatch = dispatch
        self.max_hops = max_hops
        self.injector = (FaultInjector(fault_plan)
                         if fault_plan is not None else None)
        self.nodes = [
            Node(i, functions, n_buffers=n_buffers,
                 lane_capacity=lane_capacity, strict=strict,
                 injector=self.injector)
            for i in range(nodes)
        ]
        self._lane_overflow_events = 0
        self._injected_crashes = 0
        self._dropped_messages = 0

    def run(self, spec: WorkloadSpec) -> SimStats:
        """Run the workload to completion (or deadlock)."""
        stats = SimStats()
        try:
            for message in generate(spec):
                self._deliver(message, hops=0)
        except ProtocolDeadlock as deadlock:
            stats.deadlock = str(deadlock)
        self._collect(stats)
        return stats

    def _deliver(self, message: Message, hops: int) -> None:
        handler = self.dispatch.get(message.opcode)
        if handler is None:
            return
        node = self.nodes[message.dest % len(self.nodes)]
        try:
            outgoing = node.run_handler(handler, message)
        except LaneOverflowError:
            if node.strict:
                raise
            node.abort_handler()
            self._lane_overflow_events += 1
            return
        except InjectedFault as fault:
            node.abort_handler()
            if fault.kind == "dropped_message":
                self._dropped_messages += 1
            else:
                self._injected_crashes += 1
            return
        if hops >= self.max_hops:
            return
        for reply in outgoing:
            reply.dest = reply.dest % len(self.nodes)
            self._deliver(reply, hops + 1)

    def _collect(self, stats: SimStats) -> None:
        for node in self.nodes:
            stats.handlers_run += node.handlers_run
            stats.sends += node.sends
            stats.double_frees += node.pool.double_frees
            stats.use_after_free += node.pool.use_after_free
            stats.unsynchronized_reads += node.pool.unsynchronized_reads
            stats.msglen_mismatches += node.msglen_mismatches
            stats.pending_wait_violations += node.pending_wait_violations
            stats.stale_directory_writebacks += node.directory.stale_writebacks
            stats.lane_overruns += node.queues.overruns
            stats.refcount_errors += node.pool.refcount_errors
            stats.leaked_buffers += node.pool.live_count
        stats.lane_overflow_events = self._lane_overflow_events
        stats.injected_crashes = self._injected_crashes
        stats.dropped_messages = self._dropped_messages
        if self.injector is not None:
            stats.fault_events = [str(e) for e in self.injector.events]
            stats.faults_by_site = self.injector.counts_by_site()
