"""The multi-node FLASH machine (FlashLite-lite).

Drives a set of :class:`Node` objects with a workload: each injected
message dispatches the handler registered for its opcode; messages the
handler sends are delivered to their destination nodes, which run
handlers for them in turn (bounded by a hop limit so buggy protocols
cannot ping-pong forever).  The run either completes with statistics or
raises :class:`ProtocolDeadlock` — the same observable the real FLASH
team spent days chasing.

Two classes of mid-handler failures are *recorded* rather than fatal
(they end one handler, not the run):

- :class:`LaneOverflowError` — a send overran its lane's bounded queue
  (§7); the handler aborts and the event is counted in
  ``SimStats.lane_overflow_events`` (in ``strict`` mode it still ends
  the run, like the real machine wedging);
- :class:`InjectedFault` — a :class:`~repro.faults.FaultPlan` rule
  deliberately crashed the handler or dropped its incoming message.

Pass ``fault_plan=`` to force failure paths (allocation failure, lane
backpressure, message delay/duplication) deterministically; the firing
log lands in ``SimStats.fault_events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...errors import InjectedFault, LaneOverflowError, ProtocolDeadlock
from ...faults import FaultInjector, FaultPlan
from ...lang import ast
from .network import Message
from .node import Node
from .workload import WorkloadSpec, generate


@dataclass
class SimStats:
    """Aggregated observations from one simulation run."""

    handlers_run: int = 0
    sends: int = 0
    double_frees: int = 0
    use_after_free: int = 0
    unsynchronized_reads: int = 0
    msglen_mismatches: int = 0
    pending_wait_violations: int = 0
    stale_directory_writebacks: int = 0
    lane_overruns: int = 0
    refcount_errors: int = 0
    leaked_buffers: int = 0
    deadlock: Optional[str] = None
    #: Handlers aborted because a send overran its lane (recorded, not fatal).
    lane_overflow_events: int = 0
    #: Handlers aborted / messages dropped by the fault plan.
    injected_crashes: int = 0
    dropped_messages: int = 0
    #: Every fault-plan firing, in order (strings; deterministic per seed).
    fault_events: list = field(default_factory=list)
    #: Firing counts keyed by injection site.
    faults_by_site: dict = field(default_factory=dict)
    #: Handler name -> number of times it ran (or started to run).
    handlers_seen: dict = field(default_factory=dict)
    #: Violation field name -> {handler name -> count} for every counter
    #: that can be pinned on the handler that was running when it moved.
    attribution: dict = field(default_factory=dict)
    #: Program functions the interpreter actually executed (sorted).
    functions_executed: list = field(default_factory=list)
    #: Handler that was running when the run deadlocked, if any.
    deadlock_handler: Optional[str] = None

    @property
    def injected_faults(self) -> int:
        return len(self.fault_events)

    @property
    def clean(self) -> bool:
        return (self.deadlock is None and self.double_frees == 0
                and self.use_after_free == 0
                and self.unsynchronized_reads == 0
                and self.msglen_mismatches == 0
                and self.pending_wait_violations == 0
                and self.stale_directory_writebacks == 0
                and self.lane_overruns == 0
                and self.refcount_errors == 0
                and self.leaked_buffers == 0)


class FlashMachine:
    """A small FLASH machine running one protocol's handlers."""

    def __init__(self, functions: dict[str, ast.FunctionDef],
                 dispatch: dict[int, str], nodes: int = 2,
                 n_buffers: int = 16, lane_capacity: int = 8,
                 strict: bool = False, max_hops: int = 4,
                 fault_plan: Optional[FaultPlan] = None):
        self.dispatch = dispatch
        self.max_hops = max_hops
        self.injector = (FaultInjector(fault_plan)
                         if fault_plan is not None else None)
        self.nodes = [
            Node(i, functions, n_buffers=n_buffers,
                 lane_capacity=lane_capacity, strict=strict,
                 injector=self.injector)
            for i in range(nodes)
        ]
        self._lane_overflow_events = 0
        self._injected_crashes = 0
        self._dropped_messages = 0
        self._handlers_seen: dict[str, int] = {}
        self._attribution: dict[str, dict[str, int]] = {}
        self._deadlock_handler: Optional[str] = None

    #: Violation counters that can be attributed to the handler running
    #: when they moved: SimStats field name -> per-node reader.
    _ATTRIBUTED = (
        ("double_frees", lambda n: n.pool.double_frees),
        ("use_after_free", lambda n: n.pool.use_after_free),
        ("unsynchronized_reads", lambda n: n.pool.unsynchronized_reads),
        ("msglen_mismatches", lambda n: n.msglen_mismatches),
        ("pending_wait_violations", lambda n: n.pending_wait_violations),
        ("stale_directory_writebacks", lambda n: n.directory.stale_writebacks),
        ("lane_overruns", lambda n: n.queues.overruns),
        ("refcount_errors", lambda n: n.pool.refcount_errors),
    )

    def _snapshot(self, node: Node) -> tuple:
        return tuple(read(node) for _, read in self._ATTRIBUTED)

    def _attribute(self, handler: str, before: tuple, after: tuple) -> None:
        for (name, _), prev, cur in zip(self._ATTRIBUTED, before, after):
            if cur > prev:
                per_handler = self._attribution.setdefault(name, {})
                per_handler[handler] = per_handler.get(handler, 0) + (cur - prev)

    def run(self, spec: WorkloadSpec) -> SimStats:
        """Run the workload to completion (or deadlock)."""
        stats = SimStats()
        try:
            for message in generate(spec):
                self._deliver(message, hops=0)
        except ProtocolDeadlock as deadlock:
            stats.deadlock = str(deadlock)
        self._collect(stats)
        return stats

    def _deliver(self, message: Message, hops: int) -> None:
        handler = self.dispatch.get(message.opcode)
        if handler is None:
            return
        node = self.nodes[message.dest % len(self.nodes)]
        self._handlers_seen[handler] = self._handlers_seen.get(handler, 0) + 1
        before = self._snapshot(node)
        try:
            try:
                outgoing = node.run_handler(handler, message)
            finally:
                self._attribute(handler, before, self._snapshot(node))
        except LaneOverflowError:
            if node.strict:
                raise
            node.abort_handler()
            self._lane_overflow_events += 1
            return
        except InjectedFault as fault:
            node.abort_handler()
            if fault.kind == "dropped_message":
                self._dropped_messages += 1
            else:
                self._injected_crashes += 1
            return
        except ProtocolDeadlock:
            if self._deadlock_handler is None:
                self._deadlock_handler = handler
            raise
        if hops >= self.max_hops:
            return
        for reply in outgoing:
            reply.dest = reply.dest % len(self.nodes)
            self._deliver(reply, hops + 1)

    def _collect(self, stats: SimStats) -> None:
        for node in self.nodes:
            stats.handlers_run += node.handlers_run
            stats.sends += node.sends
            stats.double_frees += node.pool.double_frees
            stats.use_after_free += node.pool.use_after_free
            stats.unsynchronized_reads += node.pool.unsynchronized_reads
            stats.msglen_mismatches += node.msglen_mismatches
            stats.pending_wait_violations += node.pending_wait_violations
            stats.stale_directory_writebacks += node.directory.stale_writebacks
            stats.lane_overruns += node.queues.overruns
            stats.refcount_errors += node.pool.refcount_errors
            stats.leaked_buffers += node.pool.live_count
        stats.lane_overflow_events = self._lane_overflow_events
        stats.injected_crashes = self._injected_crashes
        stats.dropped_messages = self._dropped_messages
        stats.handlers_seen = dict(self._handlers_seen)
        stats.attribution = {
            name: dict(sorted(per.items()))
            for name, per in sorted(self._attribution.items())
        }
        executed: set[str] = set()
        for node in self.nodes:
            executed.update(node.interp.executed)
        stats.functions_executed = sorted(executed)
        stats.deadlock_handler = self._deadlock_handler
        if self.injector is not None:
            stats.fault_events = [str(e) for e in self.injector.events]
            stats.faults_by_site = self.injector.counts_by_site()
