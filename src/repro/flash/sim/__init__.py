"""FlashLite-lite: a dynamic simulator for generated protocol code.

The paper's only practical alternative to static checking was "testing
and simulation" in FlashLite; this package provides the analogous
substrate so benchmarks can show the seeded static-checker bugs
*manifesting* dynamically (double frees, pool-draining leaks, lane
overrun deadlocks, unsynchronized reads, length mismatches).  A
:class:`repro.faults.FaultPlan` passed to :class:`FlashMachine` forces
the failure paths — allocation failure, lane backpressure, message
delay/duplication — that random workloads almost never reach.
"""

from .buffers import BufferPool, DataBuffer
from .directory import Directory
from .interp import GlobalsView, Interpreter
from .machine import FlashMachine, SimStats
from .network import Message, OutputQueues
from .node import CONSTANTS, Node
from .workload import WorkloadSpec, generate

__all__ = [
    "BufferPool", "DataBuffer", "Directory", "GlobalsView", "Interpreter",
    "FlashMachine", "SimStats", "Message", "OutputQueues", "CONSTANTS",
    "Node", "WorkloadSpec", "generate",
]
