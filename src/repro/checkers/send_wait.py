"""§9 — Send-wait errors.

A handler can send a message with the "wait" bit set, promising to wait
for the reply on that hardware interface.  Failing to wait, waiting on
the wrong interface, or issuing another send before the wait can
deadlock the machine.  The checker verifies:

1. every send with the wait bit set is followed by a wait on the proper
   interface;
2. the handler does not issue another send before it has waited.

The paper's eight false positives came from code that "broke an
abstraction barrier and performed waits without calling the interface
supplied macros" (e.g. spinning on ``PI_REPLY_READY()`` directly); the
code generator seeds exactly that idiom.

"Applied" counts wait-bit sends plus wait-macro sites (Table 6: 125).
"""

from __future__ import annotations

from typing import Optional

from ..flash import machine
from ..lang import ast
from ..mc.engine import run_machine
from ..metal.runtime import MatchContext
from ..metal.sm import StateMachine
from ..project import Program
from .base import Checker, CheckerResult, register

START = "start"
WAITING = {send: f"waiting_{send.split('_')[0].lower()}"
           for send in machine.SEND_MACROS}
EXITED = "exited"


@register
class SendWaitChecker(Checker):
    """Synchronous sends must be matched by a wait on the same interface."""

    name = "send-wait"
    metal_loc = 40

    def _build_machine(self) -> StateMachine:
        sm = StateMachine(self.name)
        sm.decl("unsigned", "a1", "a2", "a3", "a4", "a5", "a6")
        sm.state(START)
        for state in WAITING.values():
            sm.state(state)
        sm.state(EXITED)

        wait_send = {
            "PI_SEND": "PI_SEND(a1, a2, a3, 1, a5, a6)",
            "IO_SEND": "IO_SEND(a1, a2, a3, 1, a5, a6)",
            "NI_SEND": "NI_SEND(a1, a2, a3, 1, a5, a6)",
        }
        any_send = [
            "PI_SEND(a1, a2, a3, a4, a5, a6)",
            "IO_SEND(a1, a2, a3, a4, a5, a6)",
            "NI_SEND(a1, a2, a3, a4, a5, a6)",
        ]

        # Wait-bit sends move to the interface's waiting state.  These
        # rules must be tried before the generic send rules below.
        for send, pattern in wait_send.items():
            sm.add_rule(START, pattern, target=WAITING[send])

        for send, waiting_state in WAITING.items():
            proper = machine.WAIT_MACRO_FOR_SEND[send]

            def second_send(ctx: MatchContext, _send=send) -> Optional[str]:
                ctx.err(f"send issued before waiting for the previous "
                        f"{_send} reply")
                return None
            sm.add_rule(waiting_state, any_send, action=second_send)

            sm.add_rule(waiting_state, f"{proper}()", target=START)
            for other in machine.WAIT_MACROS:
                if other == proper:
                    continue

                def wrong_wait(ctx: MatchContext, _proper=proper,
                               _other=other) -> Optional[str]:
                    ctx.err(f"waits on {_other} but the outstanding send "
                            f"needs {_proper}")
                    return START
                sm.add_rule(waiting_state, f"{other}()", action=wrong_wait)

            def never_waited(ctx: MatchContext, _send=send) -> Optional[str]:
                ctx.err(f"{_send} with wait bit set is never waited for")
                return EXITED
            sm.add_rule(waiting_state, "return", action=never_waited)

        sm.add_rule(START, "return", target=EXITED)

        def at_path_end(state: str, ctx: MatchContext) -> None:
            if state in WAITING.values():
                ctx.err("send with wait bit set is never waited for")
        sm.path_end_action = at_path_end
        return sm

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        sm = self._build_machine()
        applied: set[tuple] = set()
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            for node in program.calls(function):
                if self._is_wait_related(node):
                    applied.add((node.location.filename, node.location.line,
                                 node.location.column))
        result.applied = len(applied)
        return self._finish(result, sink)

    @staticmethod
    def _is_wait_related(node: ast.Node) -> bool:
        if not isinstance(node, ast.Call) or node.callee_name is None:
            return False
        if node.callee_name in machine.WAIT_MACROS:
            return True
        if node.callee_name in machine.SEND_MACROS:
            wait_arg = machine.SEND_WAIT_ARG[node.callee_name]
            if wait_arg < len(node.args):
                arg = node.args[wait_arg]
                return isinstance(arg, ast.IntLit) and arg.value == 1
        return False
