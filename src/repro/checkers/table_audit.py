"""Auditing the protocol-writer tables against the code (§3.2, §6).

The §6 checker is parameterized by hand-maintained tables: routines that
free the current buffer when called, and routines that expect a live
buffer and keep it.  The paper's scheme "can then be done in two parts:
the checker verifies that each caller preserves any necessary
preconditions and that the procedure itself preserves the restriction"
— and mis-tabled routines were exactly the §11 trap (the "never used"
refcount call nobody's table knew about).

This checker closes the loop: it *infers* each subroutine's buffer
behaviour by abstract interpretation over its CFG (does every path
free? no path? some paths?) and reports routines whose declared table
entry uniformly contradicts their code:

- a declared ``free_routine`` through which **no** path frees;
- a declared ``buffer_use_routine`` through which **every** path frees.

Mixed (data-dependent) behaviour is tolerated — that is what the
``frees_if_true`` refinement and annotations exist for.  Routines that
allocate their own buffer manage their own lifetime and are skipped.
"""

from __future__ import annotations

from ..flash import machine
from ..lang import ast
from ..metal.runtime import Report
from ..project import Program, ProtocolInfo
from .base import Checker, CheckerResult, register


def _event_calls(event: ast.Node):
    for node in event.walk():
        if isinstance(node, ast.Call) and node.callee_name is not None:
            yield node.callee_name


@register
class TableAuditChecker(Checker):
    """Declared buffer tables must match each routine's actual behaviour."""

    name = "table-audit"
    #: Not one of the paper's Table 7 checkers (metal_loc 0 keeps it out
    #: of the summary); it guards the tables the others consume.
    metal_loc = 0

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        info = program.info
        audited = 0
        for function in program.functions():
            if info.is_handler(function.name):
                continue
            behaviour = self._infer(program, function, info)
            if behaviour is None:
                continue  # allocates: owns its own buffer lifetime
            audited += 1
            self._judge(function, behaviour, info, sink)
        result.applied = audited
        return self._finish(result, sink)

    # -- inference -----------------------------------------------------------

    def _infer(self, program: Program, function: ast.FunctionDef,
               info: ProtocolInfo):
        """Exit states {True: still holds, False: freed} over all paths.

        Returns None when the routine allocates (skipped).
        """
        cfg = program.cfg(function)
        exit_states: set[bool] = set()
        visited: set[tuple[int, bool]] = set()
        stack: list[tuple] = [(cfg.entry, True)]
        while stack:
            block, has = stack.pop()
            if (block.index, has) in visited:
                continue
            visited.add((block.index, has))
            for event in block.events:
                for callee in _event_calls(event):
                    if callee == machine.DB_ALLOC:
                        return None
                    if (callee == machine.DB_FREE
                            or callee in info.free_routines):
                        has = False
                    elif callee == machine.ANNOTATION_NO_FREE_NEEDED:
                        has = False
                    elif callee == machine.ANNOTATION_HAS_BUFFER:
                        has = True
            if block is cfg.exit or not block.successors:
                exit_states.add(has)
                continue
            for succ in block.successors:
                stack.append((succ, has))
        return exit_states

    # -- judgement ----------------------------------------------------------

    def _judge(self, function: ast.FunctionDef, exit_states: set,
               info: ProtocolInfo, sink) -> None:
        name = function.name
        frees_always = exit_states == {False}
        frees_never = exit_states == {True} or not exit_states
        if name in info.free_routines and frees_never:
            sink.add(Report(
                checker=self.name,
                message=(f"{name} is tabled as a freeing routine but no "
                         "path through it frees the buffer"),
                location=function.location, function=name,
            ))
        if name in info.buffer_use_routines and frees_always:
            sink.add(Report(
                checker=self.name,
                message=(f"{name} is tabled as buffer-expecting (no free) "
                         "but every path through it frees the buffer"),
                location=function.location, function=name,
            ))
        if name in info.frees_if_true and (frees_always or frees_never):
            sink.add(Report(
                checker=self.name,
                message=(f"{name} is tabled as conditionally freeing but "
                         "its behaviour is unconditional"),
                location=function.location, function=name,
                severity="warning",
            ))