"""§6 — Checking buffer management.

FLASH data buffers are manually reference counted.  The checker encodes
the paper's four conservative rules:

1. hardware handlers begin execution with a data buffer they must free;
2. software handlers begin without one and must allocate before sending;
3. after a free, no send can occur until another buffer is allocated;
4. once a buffer is allocated it must be freed before another allocation.

Routines listed in the protocol tables are checked for consistency with
their table entry: ``free_routines`` must end having freed the buffer,
``buffer_use_routines`` must end still holding it.  Two annotation
functions — ``has_buffer()`` and ``no_free_needed()`` — let implementors
suppress warnings; each honoured annotation site is recorded (Table 4
classifies them as useful or useless).

The 12-line refinement from §6.1 is the ``branch`` hook: conditions that
directly test a routine from ``frees_if_true`` transfer to "no buffer"
only on the edge where the routine reports it freed.  Construct with
``use_branch_refinement=False`` to reproduce the naive checker the paper
says produced "a small cascade of errors" (ablation 3 in DESIGN.md).

Finally, per the §11 war story, the checker "aggressively objects" to any
occurrence of the manual refcount function ``DB_INC_REFCOUNT``.
"""

from __future__ import annotations

from typing import Optional

from ..flash import machine
from ..lang import ast
from ..mc.engine import run_machine
from ..mc.feasibility import call_branch_transfer, direct_call
from ..metal.runtime import MatchContext, ReportSink
from ..metal.sm import StateMachine
from ..project import Program, ProtocolInfo
from .base import Checker, CheckerResult, register

HAS_BUFFER = "has_buffer"
NO_BUFFER = "no_buffer"
#: Absorbing state entered after an explicit return has been checked.
EXITED = "exited"


def _expected_states(info: ProtocolInfo, name: str) -> tuple[str, str]:
    """(initial, expected-at-exit) SM states for routine ``name``."""
    kind = info.kind_of(name)
    if kind == "hw":
        return HAS_BUFFER, NO_BUFFER
    if kind == "sw":
        return NO_BUFFER, NO_BUFFER
    if name in info.free_routines:
        return HAS_BUFFER, NO_BUFFER
    if name in info.buffer_use_routines:
        return HAS_BUFFER, HAS_BUFFER
    return NO_BUFFER, NO_BUFFER


#: Back-compat alias: the negation-peeling call matcher moved to
#: :mod:`repro.mc.feasibility`, where branch-edge reasoning now lives.
_direct_call = direct_call


@register
class BufferMgmtChecker(Checker):
    """Manual reference-counting rules for FLASH data buffers."""

    name = "buffer-mgmt"
    metal_loc = 94

    def __init__(self, use_branch_refinement: bool = True,
                 check_annotations: bool = False):
        self.use_branch_refinement = use_branch_refinement
        #: §6: annotations "serve as useful checkable comments in that
        #: the extension can warn when they are wrong (e.g., not needed
        #: on any path)".  When enabled, an annotation that never fires
        #: in a state it would change is reported as unnecessary.
        self.check_annotations = check_annotations
        # location -> (annotation kind, set of states it fired in)
        self._annotation_states: dict = {}

    # -- machine construction -----------------------------------------------

    def _build_machine(self, info: ProtocolInfo,
                       result: CheckerResult) -> StateMachine:
        sm = StateMachine(self.name)
        sm.decl("unsigned", "a1", "a2", "a3", "a4", "a5", "a6")
        sm.state(HAS_BUFFER)
        sm.state(NO_BUFFER)

        def note_annotation(ctx: MatchContext, target: str) -> None:
            result.annotations.append(ctx.location)
            key = (ctx.location.filename, ctx.location.line,
                   ctx.location.column)
            entry = self._annotation_states.setdefault(
                key, (target, set(), ctx.location))
            entry[1].add(ctx.state)

        def annotation_rule(target: str):
            def action(ctx: MatchContext) -> Optional[str]:
                note_annotation(ctx, target)
                return target
            return action

        # Annotations work from either state.
        for state in (HAS_BUFFER, NO_BUFFER):
            sm.add_rule(state, f"{machine.ANNOTATION_HAS_BUFFER}()",
                        action=annotation_rule(HAS_BUFFER))
            sm.add_rule(state, f"{machine.ANNOTATION_NO_FREE_NEEDED}()",
                        action=annotation_rule(NO_BUFFER))

        # §11: aggressively object to the "never used" refcount call.
        def refcount_action(ctx: MatchContext) -> Optional[str]:
            ctx.warn("manual DB_INC_REFCOUNT: checker cannot track this buffer")
            return None
        for state in (HAS_BUFFER, NO_BUFFER):
            sm.add_rule(state, f"{machine.DB_INC_REFCOUNT}(a1)",
                        action=refcount_action)

        # Allocation.
        def alloc_has_buffer(ctx: MatchContext) -> Optional[str]:
            ctx.err("allocation while holding a buffer (leaks current buffer)")
            return HAS_BUFFER
        sm.add_rule(HAS_BUFFER, f"{machine.DB_ALLOC}()", action=alloc_has_buffer)
        sm.add_rule(NO_BUFFER, f"{machine.DB_ALLOC}()", target=HAS_BUFFER)

        # Frees: the explicit macro plus the table of freeing routines.
        free_patterns = [f"{machine.DB_FREE}()"] + [
            self._call_pattern(sm, name) for name in sorted(info.free_routines)
        ]

        def free_no_buffer(ctx: MatchContext) -> Optional[str]:
            ctx.err("buffer freed twice (or freed without being held)")
            return NO_BUFFER
        sm.add_rule(HAS_BUFFER, free_patterns, target=NO_BUFFER)
        sm.add_rule(NO_BUFFER, free_patterns, action=free_no_buffer)

        # Uses: sends and the table of buffer-expecting routines.
        use_patterns = [
            f"{name}({', '.join(w)})"
            for name, w in (
                ("PI_SEND", ("a1", "a2", "a3", "a4", "a5", "a6")),
                ("IO_SEND", ("a1", "a2", "a3", "a4", "a5", "a6")),
                ("NI_SEND", ("a1", "a2", "a3", "a4", "a5", "a6")),
            )
        ] + [self._call_pattern(sm, name) for name in sorted(info.buffer_use_routines)]

        def use_no_buffer(ctx: MatchContext) -> Optional[str]:
            ctx.err("message send/use without a data buffer")
            return NO_BUFFER
        sm.add_rule(NO_BUFFER, use_patterns, action=use_no_buffer)

        # Returns: checked against the routine's expected exit state, then
        # parked in an absorbing state so the function-exit hook does not
        # re-report the same path.
        def return_action(ctx: MatchContext) -> Optional[str]:
            self._check_exit(info, ctx)
            return EXITED
        sm.state(EXITED)
        sm.add_rule(HAS_BUFFER, "return", action=return_action)
        sm.add_rule(NO_BUFFER, "return", action=return_action)

        def at_path_end(state: str, ctx: MatchContext) -> None:
            if state != EXITED:
                self._check_exit(info, ctx)
        sm.path_end_action = at_path_end

        def initial_state(function: ast.FunctionDef) -> str:
            return _expected_states(info, function.name)[0]
        sm.initial_state_fn = initial_state

        if self.use_branch_refinement:
            sm.branch_fn = self._make_branch_fn(info)
        else:
            # Naive variant: a call to a frees-if-true routine is treated
            # as an unconditional free (what the paper's first version did).
            def naive_free(ctx: MatchContext) -> Optional[str]:
                return NO_BUFFER
            for name in sorted(info.frees_if_true):
                sm.add_rule(HAS_BUFFER, self._call_pattern(sm, name),
                            action=naive_free)
        return sm

    @staticmethod
    def _call_pattern(sm: StateMachine, name: str) -> str:
        """Pattern text matching a call to ``name`` with 0-3 arguments."""
        # Protocol helper routines take at most a few scalar args; compile
        # one alternation per arity via named pattern.
        key = f"__call_{name}"
        if key not in sm.named_patterns:
            sm.define_pattern(
                key,
                f"{name}()",
                f"{name}(a1)",
                f"{name}(a1, a2)",
                f"{name}(a1, a2, a3)",
            )
        return key

    def _make_branch_fn(self, info: ProtocolInfo):
        """The §6.1 refinement as a declarative transfer table.

        Each ``frees_if_true`` routine "returned a 0 or 1 depending on
        whether or not they freed a buffer": holding a buffer, the true
        edge of a direct test transfers to "no buffer", the false edge
        keeps it.  ``DB_IS_ERROR`` gets the same shape — a failed
        allocation's error path holds no buffer.
        """
        transfers = {
            name: {HAS_BUFFER: (NO_BUFFER, HAS_BUFFER)}
            for name in sorted(info.frees_if_true)
        }
        transfers[machine.DB_IS_ERROR] = {HAS_BUFFER: (NO_BUFFER, HAS_BUFFER)}
        return call_branch_transfer(transfers)

    def _check_exit(self, info: ProtocolInfo, ctx: MatchContext) -> None:
        expected = _expected_states(info, ctx.function_name)[1]
        if ctx.state == expected:
            return
        if ctx.state == HAS_BUFFER:
            ctx.err("routine exits still holding its data buffer (leak)")
        else:
            ctx.err("routine exits without the buffer its callers expect")

    # -- entry point ----------------------------------------------------------

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        self._annotation_states = {}
        sm = self._build_machine(program.info, result)
        applied = 0
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            applied += 1
        result.applied = applied
        # Annotation sites can be visited along many paths; count unique.
        unique = sorted(set(result.annotations),
                        key=lambda loc: (loc.filename, loc.line, loc.column))
        result.annotations = unique
        if self.check_annotations:
            self._verify_annotations(sink)
        return self._finish(result, sink)

    def _verify_annotations(self, sink) -> None:
        """Warn about annotations that never change the machine's state.

        ``no_free_needed()`` only matters when the checker still believes
        the buffer is held; ``has_buffer()`` only matters when it does
        not.  An annotation reached exclusively in the state it asserts
        is "not needed on any path" (§6).
        """
        from ..metal.runtime import Report
        for _key, (target, states, location) in sorted(
                self._annotation_states.items()):
            if states <= {target}:
                sink.add(Report(
                    checker=self.name,
                    message=("annotation asserts a state the checker "
                             "already proves on every path (not needed)"),
                    location=location,
                    severity="warning",
                ))
