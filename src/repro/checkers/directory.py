"""§9 — Manual directory entry updates.

Directory state must be explicitly loaded into the handler-global entry
(``HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr)``), modified there, and
explicitly written back with ``DIR_WRITEBACK``.  The checker's two
conditions, straight from the paper:

1. a directory entry is loaded before it is read or written;
2. if an entry is modified, it is subsequently written back.

Speculative handlers that back out of a modification send a NAK reply;
the checker recognizes the special constant in the message header
(``HANDLER_GLOBALS(header.nh.op) = MSG_NAK``) and excuses the missing
write-back on those paths — the paper's main false-positive filter.

Remaining false-positive sources the paper describes (and our code
generator seeds): subroutines that modify the entry and rely on their
*caller* to write it back, speculative paths without a NAK, and
"abstraction errors" where the entry address is computed explicitly and
written back without a matching load.

"Applied" counts directory operations (Table 6: 1768 in total).
"""

from __future__ import annotations

from typing import Optional

from ..flash import machine
from ..lang import ast
from ..mc.engine import run_machine
from ..metal.runtime import MatchContext
from ..metal.sm import StateMachine
from ..project import Program
from .base import Checker, CheckerResult, register

# State space: entry status x NAK flag.
NONE = "none"
LOADED = "loaded"
MODIFIED = "modified"
MODIFIED_NAK = "modified+nak"
EXITED = "exited"

_DIR_LVALUE = f"{machine.HANDLER_GLOBALS}({machine.DIR_ENTRY_VAR})"


@register
class DirectoryChecker(Checker):
    """Load before use; write back after modify (unless a NAK backs out)."""

    name = "directory"
    metal_loc = 51

    def _build_machine(self, program: Program) -> StateMachine:
        sm = StateMachine(self.name)
        sm.decl("unsigned", "a1", "a2")
        for state in (NONE, LOADED, MODIFIED, MODIFIED_NAK, EXITED):
            sm.state(state)

        load = f"{_DIR_LVALUE} = {machine.DIR_LOAD}(a1)"
        modify = [f"{_DIR_LVALUE} = a1", f"{_DIR_LVALUE} |= a1",
                  f"{_DIR_LVALUE} &= a1"]
        writeback = f"{machine.DIR_WRITEBACK}(a1, a2)"
        read = _DIR_LVALUE
        nak = f"{machine.MSG_OP_LVALUE} = {machine.MSG_NAK}"

        # Loads are legal from any live state (reloading discards edits,
        # which the write-back rule will already have judged).
        for state in (NONE, LOADED, MODIFIED, MODIFIED_NAK):
            sm.add_rule(state, load, target=LOADED)

        def not_loaded(what: str):
            def action(ctx: MatchContext) -> Optional[str]:
                ctx.err(f"directory entry {what} before DIR_LOAD")
                return LOADED  # report once; assume intended load
            return action
        sm.add_rule(NONE, modify, action=not_loaded("modified"))
        sm.add_rule(NONE, read, action=not_loaded("read"))

        sm.add_rule(LOADED, modify, target=MODIFIED)
        sm.add_rule(MODIFIED, modify, target=MODIFIED)
        sm.add_rule(MODIFIED_NAK, modify, target=MODIFIED_NAK)

        def wb_without_load(ctx: MatchContext) -> Optional[str]:
            ctx.err("DIR_WRITEBACK without a matching DIR_LOAD "
                    "(entry address computed explicitly?)")
            return LOADED
        sm.add_rule(NONE, writeback, action=wb_without_load)
        for state in (LOADED, MODIFIED, MODIFIED_NAK):
            sm.add_rule(state, writeback, target=LOADED)

        # A NAK reply marks the speculative back-out idiom.
        sm.add_rule(MODIFIED, nak, target=MODIFIED_NAK)
        for state in (NONE, LOADED, MODIFIED_NAK):
            sm.add_rule(state, nak, target=state)

        def exit_check(ctx: MatchContext) -> Optional[str]:
            if ctx.state == MODIFIED:
                ctx.err("directory entry modified but never written back")
            return EXITED
        for state in (NONE, LOADED, MODIFIED, MODIFIED_NAK):
            sm.add_rule(state, "return", action=exit_check)

        def at_path_end(state: str, ctx: MatchContext) -> None:
            if state == MODIFIED:
                ctx.err("directory entry modified but never written back")
        sm.path_end_action = at_path_end
        return sm

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        sm = self._build_machine(program)
        # "Applied" counts directory *operations*; generated code puts one
        # operation per source line, so unique lines is the operation count.
        applied: set[tuple] = set()
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            for node in program.calls(function):
                if self._is_dir_operation(node):
                    applied.add((node.location.filename, node.location.line))
        result.applied = len(applied)
        return self._finish(result, sink)

    @staticmethod
    def _is_dir_operation(node: ast.Node) -> bool:
        if isinstance(node, ast.Call):
            if node.callee_name in (machine.DIR_LOAD, machine.DIR_WRITEBACK):
                return True
            if (node.callee_name == machine.HANDLER_GLOBALS and node.args
                    and isinstance(node.args[0], ast.Ident)
                    and node.args[0].name == machine.DIR_ENTRY_VAR):
                return True
        return False
