"""The paper's checker listings, verbatim.

Figure 2 (the buffer-race checker) and Figure 3 (the message-length
checker) are kept here exactly as printed, so tests and benchmarks can
demonstrate that this implementation of metal runs the published
programs unmodified.  ``BUFFER_RACE_FULL`` additionally recognizes the
"older style macros equivalent to MISCBUS_READ_DB" that §4 says the
as-run checker handled.
"""

FIGURE_2 = """\
{ #include "flash-includes.h" }
sm wait_for_db {
    /* Declare two variables 'addr' and 'buf' that can
     * match any integer expression. */
    decl { scalar } addr, buf;

    /* Checker begins in the first state (here 'start').
     * This state searches for two patterns conjoined
     * with the '|' operator. */
    start:
    /* The handler is allowed to read the data buffer
     * after calling 'WAIT_FOR_DB_FULL' --- once the
     * pattern below matches, we transition to the
     * 'stop' state, which stops checking on this
     * path. */
    { WAIT_FOR_DB_FULL(addr); } ==> stop

    /* If we hit a read of the data buffer in this
     * state, the handler did not do a WAIT_FOR_DB_FULL
     * first so emit an error and continue checking. */
    | { MISCBUS_READ_DB(addr, buf); } ==>
        { err("Buffer not synchronized"); }
    ;
}
"""

#: Figure 2 plus the legacy read macro (what §4 says was actually run).
BUFFER_RACE_FULL = """\
{ #include "flash-includes.h" }
sm wait_for_db {
    decl { scalar } addr, buf;
    start:
      { WAIT_FOR_DB_FULL(addr); } ==> stop
    | { MISCBUS_READ_DB(addr, buf); } ==>
        { err("Buffer not synchronized"); }
    | { MISCBUS_READ(addr, buf); } ==>
        { err("Buffer not synchronized"); }
    ;
}
"""

#: The declaration half of §8's no-float rule, expressed in metal using
#: declaration patterns ("patterns ... can match almost arbitrary
#: language constructs such as declarations", §3.2).  The expression
#: half (every tree node's type) stays in the Python checker, matching
#: how the paper registered a per-tree-node callback with xg++.
NO_FLOAT_DECLS = """\
{ #include "flash-includes.h" }
sm no_float_decls {
    decl { any } v;
    start:
      { float v; } ==>
        { err("floating point is not available on the protocol processor"); }
    | { double v; } ==>
        { err("floating point is not available on the protocol processor"); }
    ;
}
"""

FIGURE_3 = """\
{ #include "flash-includes.h" }
sm msglen_check {
    /* Named patterns specifying message length assignments
     * zero and non-zero values. */
    pat zero_assign =
        { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
    pat nonzero_assign =
        { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
      | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

    /* Named patterns specifying sends that transmit data
     * (these need a non-zero length field). */
    decl { unsigned } keep, swap, wait, dec, null, type;
    pat send_data =
        { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
      | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;

    /* Named patterns for sends without data
     * (these need a zero length field). */
    pat send_nodata =
        { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
      | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

    /* Start state.  Note, rules in the special 'all'
     * state are always run no matter what state the
     * SM is in.  We assume sends in this state are
     * ok and ignore them. */
    all: zero_assign ==> zero_len
       | nonzero_assign ==> nonzero_len ;

    /* If we have a zero-length, cannot send data */
    zero_len: send_data ==>
        { err("data send, zero len"); } ;

    /* If we have a non-zero length, must send data */
    nonzero_len: send_nodata ==>
        { err("nodata send, nonzero len"); } ;
}
"""

#: Every shipped textual listing, for ``mc-check lint`` (no arguments)
#: and the CI checker-of-checkers pass.  Name -> metal source.
BUILTIN_LISTINGS = {
    "figure-2": FIGURE_2,
    "buffer-race-full": BUFFER_RACE_FULL,
    "no-float-decls": NO_FLOAT_DECLS,
    "figure-3": FIGURE_3,
}
