"""Checker framework: result model, base class, and registry.

Each checker corresponds to one section of the paper and produces a
:class:`CheckerResult`: the diagnostics it emitted, how many times the
check was *applied* (the "Applied" columns of Tables 2, 3 and 6), and any
annotation sites it honoured (Table 4 counts these).  Classifying
diagnostics into true errors / minor violations / false positives is the
benchmark layer's job — the paper's authors did that by hand; we do it
against the code generator's ground-truth manifest.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Type

from ..lang.source import Location
from ..metal.runtime import Report, ReportSink
from ..project import Program


@dataclass
class CheckerResult:
    """Everything one checker produced over one program."""

    checker: str
    reports: list[Report] = field(default_factory=list)
    #: How many program points the check examined (paper's "Applied").
    applied: int = 0
    #: Annotation calls (``has_buffer``/``no_free_needed``/...) honoured.
    annotations: list[Location] = field(default_factory=list)
    #: Checker-specific extras (e.g. Table 5's handler/variable counts).
    extra: dict = field(default_factory=dict)
    #: (checker, function) pairs this run had to isolate after a crash.
    quarantines: list = field(default_factory=list)
    #: True when the result is partial (quarantine or exhausted budget).
    degraded: bool = False
    #: Human-readable notes on what was cut short and why (engine
    #: degradation, skipped work past a run deadline, ...).
    degradation_notes: list[str] = field(default_factory=list)
    #: Per-report path provenance, keyed on (checker, message, location)
    #: — the trail ``mc-check explain`` renders (repro.obs.provenance).
    provenance: dict = field(default_factory=dict)
    #: (report, reason) pairs held back by the engine's report gate —
    #: e.g. reports whose path crossed a tolerant-frontend opaque
    #: region (``suppressed_by="opaque"``).
    suppressed: list = field(default_factory=list)

    @property
    def errors(self) -> list[Report]:
        return [r for r in self.reports if r.severity == "error"]

    @property
    def warnings(self) -> list[Report]:
        return [r for r in self.reports if r.severity == "warning"]

    def __repr__(self) -> str:
        return (f"<CheckerResult {self.checker}: {len(self.reports)} reports, "
                f"applied {self.applied}>")


class Checker(ABC):
    """Base class for all checkers.

    Subclasses set :attr:`name` and :attr:`metal_loc` (the size of the
    equivalent metal extension, reported in Table 7) and implement
    :meth:`check`.
    """

    #: Stable identifier, used in reports and benchmark tables.
    name: str = ""
    #: Lines of metal the paper's version of this checker took (Table 7).
    metal_loc: int = 0
    #: True when ``check`` over a single translation unit produces the
    #: same diagnostics as over the whole program (per-function
    #: analyses).  The parallel driver fans such checkers out one unit
    #: at a time; inter-procedural checkers (lanes, exec-restrict) set
    #: this False and run as one whole-program work item.
    unit_parallel: bool = True

    @abstractmethod
    def check(self, program: Program) -> CheckerResult:
        """Run over ``program`` and return the result."""

    # -- shared helpers ------------------------------------------------------

    def _new_result(self) -> tuple[CheckerResult, ReportSink]:
        result = CheckerResult(checker=self.name)
        sink = ReportSink()
        return result, sink

    def _finish(self, result: CheckerResult, sink: ReportSink) -> CheckerResult:
        result.reports = sink.reports
        result.quarantines = list(getattr(sink, "quarantines", []))
        result.degraded = bool(getattr(sink, "degraded", False))
        result.degradation_notes = list(getattr(sink, "degradation_notes", []))
        result.provenance = dict(getattr(sink, "provenance", {}))
        result.suppressed = list(getattr(sink, "suppressed", []))
        return result


_REGISTRY: dict[str, Type[Checker]] = {}

#: The pseudo-pack every first-party checker belongs to.  The builtin
#: registry is "just the default pack": same origin shape, same
#: provenance surfaces (``mc-check checkers``, report JSON), but wired
#: in at import time rather than discovered from a ``pack.toml``.
BUILTIN_PACK = "builtin"


@dataclass(frozen=True)
class CheckerOrigin:
    """Where a registered checker came from: which pack, which version.

    Folded into cache/journal keys (:func:`repro.mc.cache.checker_fingerprint`)
    and report provenance, so bumping a pack's version invalidates
    exactly that pack's entries and every diagnostic can be attributed
    to the pack that produced it.
    """

    pack: str
    version: str
    #: The implementation file (Python module or ``.metal`` program)
    #: the checker was loaded from; empty for builtins (their source is
    #: located through the class itself).
    source: str = ""

    @property
    def builtin(self) -> bool:
        return self.pack == BUILTIN_PACK

    @property
    def label(self) -> str:
        return f"{self.pack}@{self.version}"


#: Checker name -> origin, for pack-provided checkers.  Builtins are
#: not stored: :func:`checker_origin` synthesizes their origin so the
#: builtin registry needs no load-time bookkeeping.
_ORIGINS: dict[str, CheckerOrigin] = {}


def _builtin_origin() -> CheckerOrigin:
    from .. import __version__
    return CheckerOrigin(pack=BUILTIN_PACK, version=__version__)


def checker_origin(name: str) -> CheckerOrigin:
    """The :class:`CheckerOrigin` of a registered checker.

    Builtins report the ``builtin`` pseudo-pack at the engine version;
    unknown names raise ``KeyError`` like :func:`get_checker`.
    """
    origin = _ORIGINS.get(name)
    if origin is not None:
        return origin
    if name not in _REGISTRY:
        raise KeyError(name)
    return _builtin_origin()


def is_pack_checker(name: str) -> bool:
    """True when ``name`` was provided by a loaded pack (not builtin)."""
    return name in _ORIGINS


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a name")
    _REGISTRY[cls.name] = cls
    return cls


def register_pack_checker(cls: Type[Checker],
                          origin: CheckerOrigin) -> Type[Checker]:
    """Register a pack-provided checker with its provenance.

    Name collisions — with a builtin or with another pack's checker —
    are structural load errors (:class:`repro.packs.PackError`): two
    checkers sharing a name would make reports, cache keys, and
    ``--checker`` selection ambiguous.
    """
    from ..packs.manifest import PackError
    if not cls.name:
        raise PackError(
            f"pack {origin.label}: checker class {cls.__name__} in "
            f"{origin.source or '<module>'} sets no name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        holder = _ORIGINS.get(cls.name)
        held_by = holder.label if holder is not None else "builtin"
        raise PackError(
            f"pack {origin.label}: checker name {cls.name!r} collides "
            f"with the one registered by {held_by}")
    _REGISTRY[cls.name] = cls
    _ORIGINS[cls.name] = origin
    from ..mc.cache import _CHECKER_FP
    _CHECKER_FP.pop(cls.name, None)
    return cls


def unregister_pack_checker(name: str) -> None:
    """Remove a pack checker (pack unload; tests).  Builtin names are
    never removable through this path."""
    if name in _ORIGINS:
        _ORIGINS.pop(name, None)
        _REGISTRY.pop(name, None)
        from ..mc.cache import _CHECKER_FP
        _CHECKER_FP.pop(name, None)


def checker_names() -> list[str]:
    return list(_REGISTRY)

def get_checker(name: str) -> Checker:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown checker {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, registration order."""
    return [cls() for cls in _REGISTRY.values()]


def run_all(program: Program,
            names: Optional[list[str]] = None, *,
            keep_going: bool = False,
            deadline: Optional[float] = None) -> dict[str, CheckerResult]:
    """Run the named checkers (default: all) over ``program``.

    With ``keep_going``, one checker blowing up costs only that checker:
    its crash becomes a quarantine diagnostic on an otherwise-empty
    (degraded) result, and every other checker still reports — the
    engine analog of the simulator surviving a single handler's fault.

    ``deadline`` is an absolute ``time.time()`` instant bounding the
    whole run: checkers not yet started when it passes are skipped with
    a degraded, noted result (partial results now beat complete results
    never).  The parallel driver (:mod:`repro.mc.parallel`) shares the
    same deadline across every worker.
    """
    checkers = (
        [get_checker(n) for n in names] if names is not None else all_checkers()
    )
    results: dict[str, CheckerResult] = {}
    for checker in checkers:
        if deadline is not None and time.time() >= deadline:
            result = CheckerResult(checker=checker.name, degraded=True)
            result.degradation_notes.append(
                f"[{checker.name}] not run: run deadline exceeded")
            results[checker.name] = result
            continue
        try:
            results[checker.name] = checker.check(program)
        except Exception as exc:
            # Pack checkers run sandboxed unconditionally: third-party
            # code blowing up costs that pack's result, never the run.
            # Builtins keep the opt-in keep_going contract.
            from_pack = is_pack_checker(checker.name)
            if not keep_going and not from_pack:
                raise
            from ..mc.resilience import Quarantine
            result = CheckerResult(checker=checker.name, degraded=True)
            result.quarantines.append(Quarantine(
                checker=checker.name, function="*",
                phase="pack" if from_pack else "checker",
                error_type=type(exc).__name__, message=str(exc),
            ))
            results[checker.name] = result
    return results
