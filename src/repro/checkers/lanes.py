"""§7 — Deadlock restrictions on message sends (inter-procedural).

FLASH divides the network into four virtual lanes; a handler may not send
more than its declared allowance on a lane without explicitly waiting for
output-queue space (``WAIT_FOR_SPACE``), or the machine can deadlock.

Following the paper, the checker runs in two passes over xg++'s global
framework: a *local* pass walks every function, annotates each send with
its lane, and emits the function's flow graph; a *global* pass links the
flow graphs into a call graph and traverses it, computing the maximum
number of sends per lane any inter-procedural path can perform.  A send
pushing a handler past its allowance is flagged with a textual backtrace
of the call path — the feature the paper calls "crucial for diagnosing
errors".

Cycles are handled with the paper's fixed-point rule: a call cycle that
performs no sends cannot change the send count and is ignored; a cycle
that does send is reported as a possible error.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph, FlowGraph, emit_flowgraph
from ..flash import machine
from ..lang import ast
from ..lang.source import Location
from ..mc.cache import AnalysisMemo
from ..mc.interproc import bottom_up
from ..metal.runtime import Report
from ..obs.metrics import current_metrics
from ..project import Program
from .base import Checker, CheckerResult, register

LANES = machine.LANE_COUNT

#: Process-wide memo for :func:`summarize_lanes`, which is pure in
#: (flowgraph, relevant callee summaries, cycle peers).  Across repeated
#: runs of the global pass (watch mode, overlapping protocol variants)
#: an unchanged function re-uses its summary; hit/miss deltas feed the
#: ``engine.summary_hits``/``engine.summary_misses`` counters alongside
#: the SM engine's function-summary store.
_SUMMARY_MEMO = AnalysisMemo()


def _call_targets(graph: FlowGraph) -> set[str]:
    """Every function name the graph's events can invoke (direct call
    events plus annotation-carried call lists)."""
    targets: set[str] = set()
    for node in graph.nodes.values():
        for i, call in enumerate(node.calls):
            if call:
                targets.add(call)
            ann = node.annotations[i] or {}
            targets.update(t for t in (ann.get("calls") or ()) if t)
    return targets


def _summary_memo_key(graph: FlowGraph, summaries: dict,
                      cycle_peers: set[str]) -> str:
    """Content key for one ``summarize_lanes`` call: the flow graph's
    full repr (dataclasses of strs/ints — deterministic) plus the repr
    of each callee summary the computation can consult and the cycle
    peer set.  Anything that can change the output changes the key."""
    relevant = sorted(
        (name, repr(summaries.get(name)))
        for name in _call_targets(graph)
        if name not in cycle_peers
    )
    text = "\n".join((repr(graph), repr(relevant), repr(sorted(cycle_peers))))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def annotate_lanes(event: ast.Node) -> dict | None:
    """The local pass's annotation hook: mark sends and space waits."""
    sends: list[list] = []
    waits: list[int] = []
    for node in event.walk():
        if not isinstance(node, ast.Call) or node.callee_name is None:
            continue
        lane = machine.lane_of_send(node.callee_name, node.args)
        if lane is not None:
            sends.append([lane, node.location.line])
        elif node.callee_name == machine.WAIT_FOR_SPACE and node.args:
            lane_arg = node.args[0]
            if isinstance(lane_arg, ast.IntLit):
                waits.append(lane_arg.value)
            elif isinstance(lane_arg, ast.Ident):
                waits.append(_lane_constant(lane_arg.name))
    if not sends and not waits:
        return None
    return {"sends": sends, "waits": waits}


def _lane_constant(name: str) -> int:
    return {
        "LANE_PI": machine.LANE_PI,
        "LANE_IO": machine.LANE_IO,
        "LANE_NI_REQUEST": machine.LANE_NI_REQUEST,
        "LANE_NI_REPLY": machine.LANE_NI_REPLY,
    }.get(name, machine.LANE_PI)


@dataclass
class LaneSummary:
    """Per-function summary of lane usage over any path."""

    #: Maximum sends on each lane along any path through the function.
    peak: list[int] = field(default_factory=lambda: [0] * LANES)
    #: Sends still "outstanding" on each lane when the function returns.
    net: list[int] = field(default_factory=lambda: [0] * LANES)
    #: Whether the function resets the count on each lane (WAIT_FOR_SPACE).
    resets: list[bool] = field(default_factory=lambda: [False] * LANES)
    #: Backtrace frames ("function:line") achieving each lane's peak.
    witness: list[tuple] = field(default_factory=lambda: [()] * LANES)
    #: True if the function sends at all (for the cycle fixed-point rule).
    sends_any: bool = False


def summarize_lanes(graph: FlowGraph, summaries: dict[str, LaneSummary],
                    cycle_peers: set[str]) -> LaneSummary:
    """Compute one function's :class:`LaneSummary` from callee summaries.

    Works on the acyclic block structure: per-lane *maximum* cumulative
    counts merge with ``max`` at joins, which is exact because a path's
    suffix contribution is independent of its prefix.
    """
    out = LaneSummary()
    # Per-block entry state: (cum counts, cum witness) per lane.
    entry: dict[int, tuple] = {}
    entry[graph.entry] = ([0] * LANES, [()] * LANES)
    order = _topo_blocks(graph)
    exit_cum = [0] * LANES
    exit_wit: list[tuple] = [()] * LANES
    for index in order:
        node = graph.nodes[index]
        if index not in entry:
            continue  # unreachable
        cum, wit = entry[index]
        cum, wit = list(cum), list(wit)
        for i, call in enumerate(node.calls):
            ann = node.annotations[i] or {}
            for lane, line in ann.get("sends", ()):
                cum[lane] += 1
                wit[lane] = wit[lane] + ((f"{graph.function}:{line}"),)
                out.sends_any = True
                if cum[lane] > out.peak[lane]:
                    out.peak[lane] = cum[lane]
                    out.witness[lane] = tuple(wit[lane])
            for lane in ann.get("waits", ()):
                cum[lane] = 0
                wit[lane] = ()
                out.resets[lane] = True
            callee = call if call is not None else None
            targets = [callee] if callee else []
            targets += (ann.get("calls") or [])
            for target in targets:
                if target is None or target in cycle_peers:
                    continue
                sub = summaries.get(target)
                if sub is None:
                    continue
                out.sends_any = out.sends_any or sub.sends_any
                for lane in range(LANES):
                    candidate = cum[lane] + sub.peak[lane]
                    if candidate > out.peak[lane]:
                        out.peak[lane] = candidate
                        out.witness[lane] = tuple(sub.witness[lane]) + (
                            f"{graph.function}:{node.lines[i]}",
                        )
                    if sub.resets[lane]:
                        cum[lane] = sub.net[lane]
                        wit[lane] = tuple(sub.witness[lane])
                        out.resets[lane] = True
                    elif sub.net[lane]:
                        cum[lane] += sub.net[lane]
                        wit[lane] = tuple(wit[lane]) + tuple(sub.witness[lane])
        if index == graph.exit or not node.successors:
            for lane in range(LANES):
                if cum[lane] > exit_cum[lane]:
                    exit_cum[lane] = cum[lane]
                    exit_wit[lane] = tuple(wit[lane])
        for succ in node.successors:
            if succ not in entry:
                entry[succ] = (list(cum), list(wit))
            else:
                scum, swit = entry[succ]
                for lane in range(LANES):
                    if cum[lane] > scum[lane]:
                        scum[lane] = cum[lane]
                        swit[lane] = wit[lane]
    out.net = exit_cum
    # Reuse the per-lane exit witnesses for net composition.
    for lane in range(LANES):
        if not out.witness[lane]:
            out.witness[lane] = tuple(exit_wit[lane])
    return out


def _topo_blocks(graph: FlowGraph) -> list[int]:
    """Topological order of the flow graph's blocks, back edges dropped."""
    back: set[tuple[int, int]] = set()
    color: dict[int, int] = {graph.entry: 1}
    stack: list[tuple[int, int]] = [(graph.entry, 0)]
    while stack:
        index, edge_i = stack[-1]
        succs = graph.nodes[index].successors
        if edge_i < len(succs):
            stack[-1] = (index, edge_i + 1)
            succ = succs[edge_i]
            state = color.get(succ, 0)
            if state == 1:
                back.add((index, succ))
            elif state == 0:
                color[succ] = 1
                stack.append((succ, 0))
        else:
            color[index] = 2
            stack.pop()
    indegree: dict[int, int] = {i: 0 for i in graph.nodes}
    for index, node in graph.nodes.items():
        for succ in node.successors:
            if (index, succ) not in back:
                indegree[succ] += 1
    ready = [i for i, d in indegree.items() if d == 0]
    order: list[int] = []
    while ready:
        index = ready.pop()
        order.append(index)
        for succ in graph.nodes[index].successors:
            if (index, succ) in back:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return order


@register
class LaneChecker(Checker):
    """Handlers must not exceed their per-lane send allowance."""

    name = "lanes"
    metal_loc = 220
    #: The global pass links flow graphs across files; one work item.
    unit_parallel = False

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        # Local pass: emit annotated flow graphs.
        graphs = [
            emit_flowgraph(program.cfg(f), annotate=annotate_lanes)
            for f in program.functions()
        ]
        callgraph = CallGraph(graphs)
        # Global pass: bottom-up summaries with the fixed-point cycle rule.
        warned_cycles: set[frozenset] = set()

        def summarize(graph: FlowGraph, summaries, cycle_peers):
            # Only the pure summary computation is memoized; the cycle
            # warning below stays live so every run that still contains
            # a sending cycle reports it (reports are per-run state).
            key = _summary_memo_key(graph, summaries, cycle_peers)
            summary = _SUMMARY_MEMO.get(key)
            if summary is None:
                summary = summarize_lanes(graph, summaries, cycle_peers)
                _SUMMARY_MEMO.put(key, summary)
            if cycle_peers and summary.sends_any:
                key = frozenset(cycle_peers)
                if key not in warned_cycles:
                    warned_cycles.add(key)
                    sink.add(Report(
                        checker=self.name,
                        message=("call cycle through "
                                 f"{', '.join(sorted(cycle_peers))} contains "
                                 "message sends; cannot bound lane usage"),
                        location=Location(graph.filename, 1, 1),
                        function=graph.function,
                    ))
            return summary

        memo_hits = _SUMMARY_MEMO.hits
        memo_misses = _SUMMARY_MEMO.misses
        summaries = bottom_up(callgraph, summarize)
        metrics = current_metrics()
        if metrics is not None:
            if _SUMMARY_MEMO.hits > memo_hits:
                metrics.inc("engine.summary_hits",
                            _SUMMARY_MEMO.hits - memo_hits)
            if _SUMMARY_MEMO.misses > memo_misses:
                metrics.inc("engine.summary_misses",
                            _SUMMARY_MEMO.misses - memo_misses)

        result.applied = sum(
            1
            for graph in graphs
            for node in graph.nodes.values()
            for ann in node.annotations
            if ann and ann.get("sends")
        )

        for handler in program.info.handlers.values():
            if handler.kind == "proc":
                continue
            summary = summaries.get(handler.name)
            if summary is None:
                continue
            for lane in range(LANES):
                if summary.peak[lane] > handler.lane_allowance[lane]:
                    # Report at the send that exceeds the allowance (the
                    # last frame); earlier frames become the backtrace.
                    frames = summary.witness[lane]
                    head = frames[-1] if frames else f"{handler.name}:1"
                    fname, _, line = head.rpartition(":")
                    sink.add(Report(
                        checker=self.name,
                        message=(
                            f"handler {handler.name} can send "
                            f"{summary.peak[lane]} messages on lane "
                            f"{machine.LANE_NAMES[lane]} but is allowed "
                            f"{handler.lane_allowance[lane]} (add "
                            "WAIT_FOR_SPACE before the extra send)"
                        ),
                        location=Location(
                            self._file_of(program, fname), int(line or 1), 1
                        ),
                        function=handler.name,
                        backtrace=tuple(frames[:-1]),
                    ))
        return self._finish(result, sink)

    @staticmethod
    def _file_of(program: Program, function_name: str) -> str:
        try:
            return program.function(function_name).location.filename
        except KeyError:
            return "<unknown>"
