"""§4 — Buffer fill race conditions.

When a message arrives, the handler starts on the header while the
hardware is still filling the data buffer; any ``MISCBUS_READ_DB`` must
be preceded on its path by ``WAIT_FOR_DB_FULL``.  This checker is the
paper's Figure 2 (12 lines of metal), run through the textual metal
frontend — the published listing, plus the legacy read macro §4 mentions.

"Applied" is the number of data-buffer reads examined (Table 2).
"""

from __future__ import annotations

from ..flash import machine
from ..mc.engine import run_machine
from ..metal.parser import parse_metal
from ..metal.runtime import ReportSink
from ..project import Program
from .base import Checker, CheckerResult, register
from .metal_sources import BUFFER_RACE_FULL

_READ_MACROS = (machine.MISCBUS_READ_DB, machine.MISCBUS_READ_DB_OLD)


@register
class BufferRaceChecker(Checker):
    """WAIT_FOR_DB_FULL must precede MISCBUS_READ_DB on every path."""

    name = "buffer-race"
    metal_loc = 12

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        sm = parse_metal(BUFFER_RACE_FULL)
        applied: set[tuple] = set()
        by_function: dict[str, int] = {}
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            for node in program.calls(function):
                if node.callee_name in _READ_MACROS:
                    site = (node.location.filename, node.location.line,
                            node.location.column)
                    if site not in applied:
                        applied.add(site)
                        by_function[function.name] = (
                            by_function.get(function.name, 0) + 1)
        result.applied = len(applied)
        # Per-function application counts: the granularity at which the
        # ranking cascade discounts pile-ups (docs/analysis.md).
        result.extra["applied_by_function"] = by_function
        return self._finish(result, sink)
