"""§9 — Data buffer allocation must be checked for failure.

After a handler frees its buffer it must allocate another before sending
data; ``DB_ALLOC`` can fail when no buffers are available, so every
allocation must be tested with ``DB_IS_ERROR`` before the buffer is used.

The known false-positive source (the paper found exactly this) is
debugging code that prints the buffer value before checking it.

"Applied" is the number of allocation sites (Table 6: 97 in total).
"""

from __future__ import annotations

from typing import Optional

from ..flash import machine
from ..mc.engine import run_machine
from ..metal.runtime import MatchContext
from ..metal.sm import StateMachine
from ..project import Program
from .base import Checker, CheckerResult, register

OK = "ok"
UNCHECKED = "unchecked"


@register
class AllocFailChecker(Checker):
    """DB_ALLOC results must be tested with DB_IS_ERROR before use."""

    name = "alloc-fail"
    metal_loc = 16

    def _build_machine(self, program: Program) -> StateMachine:
        sm = StateMachine(self.name)
        sm.decl("unsigned", "a1", "a2", "a3", "a4", "a5", "a6")
        sm.state(OK)
        sm.state(UNCHECKED)

        sm.add_rule(OK, f"{machine.DB_ALLOC}()", target=UNCHECKED)
        sm.add_rule(UNCHECKED, f"{machine.DB_IS_ERROR}(a1)", target=OK)

        use_patterns = [
            "PI_SEND(a1, a2, a3, a4, a5, a6)",
            "IO_SEND(a1, a2, a3, a4, a5, a6)",
            "NI_SEND(a1, a2, a3, a4, a5, a6)",
            f"{machine.DB_FREE}()",
            f"{machine.MISCBUS_READ_DB}(a1, a2)",
            "DEBUG_PRINT(a1)",
        ] + [
            f"{name}(a1)" for name in sorted(program.info.buffer_use_routines)
        ]

        def use_action(ctx: MatchContext) -> Optional[str]:
            ctx.err("buffer used before checking DB_ALLOC for failure")
            return OK  # report once per path
        sm.add_rule(UNCHECKED, use_patterns, action=use_action)
        return sm

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        sm = self._build_machine(program)
        applied: set[tuple] = set()
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            for node in program.calls(function):
                if node.callee_name == machine.DB_ALLOC:
                    applied.add((node.location.filename, node.location.line,
                                 node.location.column))
        result.applied = len(applied)
        return self._finish(result, sink)
