"""§5 — Consistency of decoupled message length state.

The message-length field in the header and the has-data parameter of a
send are set independently; a data send needs ``LEN_WORD`` or
``LEN_CACHELINE``, a no-data send needs ``LEN_NODATA``.  The checker is
the paper's Figure 3 (29 lines of metal), run through the textual metal
frontend verbatim.

"Applied" is the number of send sites checked (Table 3's counts:
205/316/308/302/346/73 across the five protocols and common code).
"""

from __future__ import annotations

from ..flash import machine
from ..mc.engine import run_machine
from ..metal.parser import parse_metal
from ..metal.runtime import ReportSink
from ..project import Program
from .base import Checker, CheckerResult, register
from .metal_sources import FIGURE_3


@register
class MsgLengthChecker(Checker):
    """Message length field must agree with the send's has-data flag."""

    name = "msg-length"
    metal_loc = 29

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        sm = parse_metal(FIGURE_3)
        applied: set[tuple] = set()
        for function in program.functions():
            run_machine(sm, program.cfg(function), sink)
            for node in program.calls(function):
                if node.callee_name in machine.SEND_MACROS:
                    applied.add((node.location.filename, node.location.line,
                                 node.location.column))
        result.applied = len(applied)
        return self._finish(result, sink)
