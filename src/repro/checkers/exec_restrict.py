"""§8 — Handler execution restrictions.

FLASH's execution environment is more restrictive than C.  This module
implements the §8 checks as two registered checkers, matching how
Table 7 accounts for them separately:

:class:`ExecRestrictChecker` (84 lines of metal in the paper)
    * handlers take no parameters and return no results;
    * deprecated macros are flagged;
    * "no stack" handlers must not take the address of locals, must not
      declare too many locals or any aggregate larger than 64 bits, and
      every call out of them must be bracketed by ``SET_STACKPTR``
      (no spurious ``SET_STACKPTR`` either);
    * simulator hooks: a handler's first two statements must be
      ``HANDLER_DEFS()`` and ``HANDLER_PROLOGUE()`` (software handlers:
      ``SWHANDLER_PROLOGUE()``), and every other routine must open with
      ``SUBROUTINE_PROLOGUE()``.  The hardware-handler list comes from
      the protocol specification (``ProtocolInfo``), as in the paper.

:class:`NoFloatChecker` (7 lines)
    * protocol code cannot perform floating-point operations; the
      checker visits every tree node and objects to any floating type.

Table 5's "Handlers" and "Vars" columns are reported via
``result.extra["handlers_checked"]`` / ``extra["vars_checked"]``.
"""

from __future__ import annotations

from ..flash import machine
from ..lang import ast, ctypes
from ..lang.source import Location
from ..metal.runtime import Report, ReportSink
from ..project import Program, ProtocolInfo
from .base import Checker, CheckerResult, register

#: Names that are FLASH environment macros, not real subroutine calls —
#: calling these from a no-stack handler needs no SET_STACKPTR.
_MACRO_NAMES = frozenset({
    machine.HANDLER_DEFS, machine.HANDLER_PROLOGUE, machine.SWHANDLER_PROLOGUE,
    machine.SUBROUTINE_PROLOGUE, machine.SET_STACKPTR, machine.NOSTACK,
    machine.WAIT_FOR_DB_FULL, machine.MISCBUS_READ_DB, machine.MISCBUS_READ_DB_OLD,
    machine.DB_ALLOC, machine.DB_FREE, machine.DB_IS_ERROR, machine.DB_INC_REFCOUNT,
    machine.ANNOTATION_HAS_BUFFER, machine.ANNOTATION_NO_FREE_NEEDED,
    machine.DIR_LOAD, machine.DIR_WRITEBACK, machine.WAIT_FOR_SPACE,
    machine.HANDLER_GLOBALS,
    *machine.SEND_MACROS, *machine.WAIT_MACROS, *machine.DEPRECATED_MACROS,
})


def _first_call_stmts(function: ast.FunctionDef) -> list[str]:
    """Callee names of the function's first two top-level statements."""
    names: list[str] = []
    for stmt in function.body.stmts[:2]:
        if (isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Call)
                and stmt.expr.callee_name is not None):
            names.append(stmt.expr.callee_name)
        else:
            names.append("")
    while len(names) < 2:
        names.append("")
    return names


@register
class ExecRestrictChecker(Checker):
    """Signature, stack, deprecated-macro, and simulator-hook rules."""

    name = "exec-restrict"
    metal_loc = 84
    #: The nostack rule follows calls into other files; one work item.
    unit_parallel = False

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        info = program.info
        handlers_checked = 0
        vars_checked = 0
        for function in program.functions():
            handlers_checked += 1
            vars_checked += self._count_vars(function)
            kind = info.kind_of(function.name)
            if kind in ("hw", "sw"):
                self._check_signature(function, sink)
            self._check_deprecated(function, sink)
            self._check_hooks(function, kind, sink)
            handler = info.handler(function.name)
            declared_nostack = handler is not None and handler.nostack
            annotated_nostack = self._count_nostack_annotations(function) > 0
            if declared_nostack or annotated_nostack:
                self._check_nostack_annotation(function, sink)
                self._check_nostack(program, function, sink)
        result.applied = handlers_checked
        result.extra["handlers_checked"] = handlers_checked
        result.extra["vars_checked"] = vars_checked
        return self._finish(result, sink)

    # -- individual rules ---------------------------------------------------

    @staticmethod
    def _count_vars(function: ast.FunctionDef) -> int:
        count = sum(1 for p in function.params if p.name)
        for node in function.walk():
            if isinstance(node, ast.DeclStmt):
                count += len(node.decls)
        return count

    def _check_signature(self, function: ast.FunctionDef, sink: ReportSink) -> None:
        if not function.return_type.is_void:
            sink.add(Report(
                checker=self.name,
                message=f"handler {function.name} must return void",
                location=function.location, function=function.name,
            ))
        if not function.takes_no_params:
            sink.add(Report(
                checker=self.name,
                message=f"handler {function.name} must take no parameters",
                location=function.location, function=function.name,
            ))

    def _check_deprecated(self, function: ast.FunctionDef, sink: ReportSink) -> None:
        for node in function.walk():
            if (isinstance(node, ast.Call)
                    and node.callee_name in machine.DEPRECATED_MACROS):
                sink.add(Report(
                    checker=self.name,
                    message=f"deprecated macro {node.callee_name} used",
                    location=node.location, function=function.name,
                    severity="warning",
                ))

    def _check_hooks(self, function: ast.FunctionDef, kind: str,
                     sink: ReportSink) -> None:
        first, second = _first_call_stmts(function)
        if kind == "hw":
            expected = (machine.HANDLER_DEFS, machine.HANDLER_PROLOGUE)
        elif kind == "sw":
            expected = (machine.HANDLER_DEFS, machine.SWHANDLER_PROLOGUE)
        else:
            expected = (machine.SUBROUTINE_PROLOGUE, None)
        if first != expected[0]:
            sink.add(Report(
                checker=self.name,
                message=(f"{function.name}: first statement must call "
                         f"{expected[0]} (simulator hook missing)"),
                location=function.location, function=function.name,
            ))
        if expected[1] is not None and second != expected[1]:
            sink.add(Report(
                checker=self.name,
                message=(f"{function.name}: second statement must call "
                         f"{expected[1]} (simulator hook missing)"),
                location=function.location, function=function.name,
            ))

    @staticmethod
    def _count_nostack_annotations(function: ast.FunctionDef) -> int:
        return sum(
            1 for node in function.walk()
            if isinstance(node, ast.Call)
            and node.callee_name == machine.NOSTACK
        )

    def _check_nostack_annotation(self, function: ast.FunctionDef,
                                  sink: ReportSink) -> None:
        """§8: exactly one NOSTACK() at the beginning of the handler."""
        count = self._count_nostack_annotations(function)
        if count != 1:
            sink.add(Report(
                checker=self.name,
                message=(f"no-stack handler {function.name} must carry "
                         f"exactly one NOSTACK() annotation (found {count})"),
                location=function.location, function=function.name,
            ))
            if count == 0:
                return
        # It must come before anything but the simulator hooks.
        hooks = {machine.HANDLER_DEFS, machine.HANDLER_PROLOGUE,
                 machine.SWHANDLER_PROLOGUE, machine.SUBROUTINE_PROLOGUE}
        for stmt in function.body.stmts:
            if (isinstance(stmt, ast.ExprStmt)
                    and isinstance(stmt.expr, ast.Call)):
                name = stmt.expr.callee_name
                if name in hooks:
                    continue
                if name == machine.NOSTACK:
                    return
            sink.add(Report(
                checker=self.name,
                message=(f"{function.name}: NOSTACK() must be the first "
                         "statement after the simulator hooks"),
                location=stmt.location, function=function.name,
            ))
            return

    def _check_nostack(self, program: Program, function: ast.FunctionDef,
                       sink: ReportSink) -> None:
        local_names = {p.name for p in function.params if p.name}
        local_count = len(local_names)
        for node in function.walk():
            if isinstance(node, ast.DeclStmt):
                for decl in node.decls:
                    local_names.add(decl.name)
                    local_count += 1
                    self._check_aggregate(program, decl, function, sink)
        if local_count > machine.NOSTACK_MAX_LOCALS:
            sink.add(Report(
                checker=self.name,
                message=(f"no-stack handler {function.name} declares "
                         f"{local_count} locals (max "
                         f"{machine.NOSTACK_MAX_LOCALS})"),
                location=function.location, function=function.name,
            ))
        for node in function.walk():
            if (isinstance(node, ast.UnaryOp) and node.op == "&"
                    and isinstance(node.operand, ast.Ident)
                    and node.operand.name in local_names):
                sink.add(Report(
                    checker=self.name,
                    message=(f"no-stack handler {function.name} takes the "
                             f"address of local {node.operand.name!r}"),
                    location=node.location, function=function.name,
                ))
        self._check_stackptr_discipline(program, function, sink)

    def _check_aggregate(self, program: Program, decl: ast.VarDecl,
                         function: ast.FunctionDef, sink: ReportSink) -> None:
        type_name = decl.type_name
        if type_name.array_dims:
            sink.add(Report(
                checker=self.name,
                message=(f"no-stack handler {function.name} declares array "
                         f"{decl.name!r}"),
                location=decl.location, function=function.name,
            ))
            return
        if type_name.specifiers and type_name.specifiers[0] in ("struct", "union") \
                and type_name.pointer_depth == 0:
            # §8: aggregates up to 64 bits "safely reside in registers".
            bits = self._aggregate_bits(program, function, type_name)
            if bits is not None and bits <= machine.NOSTACK_MAX_AGGREGATE_BITS:
                return
            detail = (f"({bits} bits)" if bits is not None
                      else "(unknown size)")
            sink.add(Report(
                checker=self.name,
                message=(f"no-stack handler {function.name} declares "
                         f"aggregate {decl.name!r} larger than "
                         f"{machine.NOSTACK_MAX_AGGREGATE_BITS} bits "
                         f"{detail}"),
                location=decl.location, function=function.name,
            ))

    @staticmethod
    def _aggregate_bits(program: Program, function: ast.FunctionDef,
                        type_name: ast.TypeName):
        sema = program.sema.get(function.location.filename)
        if sema is None or len(type_name.specifiers) < 2:
            return None
        struct = sema.structs.get(type_name.specifiers[1])
        if struct is None:
            return None
        return struct.size_bits()

    def _check_stackptr_discipline(self, program: Program,
                                   function: ast.FunctionDef,
                                   sink: ReportSink) -> None:
        defined = {f.name for f in program.functions()}

        def is_real_call(stmt: ast.Stmt) -> bool:
            if not isinstance(stmt, ast.ExprStmt):
                return False
            expr = stmt.expr
            if not isinstance(expr, ast.Call) or expr.callee_name is None:
                return False
            name = expr.callee_name
            return name not in _MACRO_NAMES and name in defined

        def is_set_stackptr(stmt: ast.Stmt) -> bool:
            return (isinstance(stmt, ast.ExprStmt)
                    and isinstance(stmt.expr, ast.Call)
                    and stmt.expr.callee_name == machine.SET_STACKPTR)

        def scan(block: ast.Block) -> None:
            stmts = block.stmts
            for i, stmt in enumerate(stmts):
                if is_set_stackptr(stmt):
                    nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                    if nxt is None or not is_real_call(nxt):
                        sink.add(Report(
                            checker=self.name,
                            message=(f"{function.name}: SET_STACKPTR not "
                                     "followed by a call"),
                            location=stmt.location, function=function.name,
                        ))
                elif is_real_call(stmt):
                    prev = stmts[i - 1] if i > 0 else None
                    if prev is None or not is_set_stackptr(prev):
                        sink.add(Report(
                            checker=self.name,
                            message=(f"{function.name}: call without "
                                     "SET_STACKPTR in no-stack handler"),
                            location=stmt.location, function=function.name,
                        ))
                for child in stmt.children():
                    if isinstance(child, ast.Block):
                        scan(child)
                if isinstance(stmt, ast.Block):
                    scan(stmt)

        scan(function.body)


@register
class NoFloatChecker(Checker):
    """Protocol code cannot perform floating point operations."""

    name = "no-float"
    metal_loc = 7

    def check(self, program: Program) -> CheckerResult:
        result, sink = self._new_result()
        nodes_checked = 0
        for function in program.functions():
            for node in function.walk():
                nodes_checked += 1
                if self._is_floating(node):
                    sink.add(Report(
                        checker=self.name,
                        message="floating point is not available on the "
                                "protocol processor",
                        location=node.location, function=function.name,
                    ))
        result.applied = nodes_checked
        return self._finish(result, sink)

    @staticmethod
    def _is_floating(node: ast.Node) -> bool:
        if isinstance(node, ast.FloatLit):
            return True
        if isinstance(node, ast.Expr):
            ctype = getattr(node, "ctype", None)
            if ctype is not None and ctype.is_floating:
                return True
        if isinstance(node, (ast.VarDecl, ast.ParamDecl, ast.FieldDecl)):
            return node.type_name is not None and node.type_name.is_floating
        return False
