"""The paper's checkers (§4-§9), built on the metal/mc framework.

Importing this package registers every checker; ``all_checkers()``
returns fresh instances in paper order.
"""

from .base import (
    Checker,
    CheckerResult,
    all_checkers,
    checker_names,
    get_checker,
    register,
    run_all,
)
from .buffer_race import BufferRaceChecker
from .msg_length import MsgLengthChecker
from .buffer_mgmt import BufferMgmtChecker
from .lanes import LaneChecker
from .exec_restrict import ExecRestrictChecker, NoFloatChecker
from .alloc_fail import AllocFailChecker
from .directory import DirectoryChecker
from .send_wait import SendWaitChecker
from .table_audit import TableAuditChecker
from . import metal_sources

__all__ = [
    "Checker", "CheckerResult", "all_checkers", "checker_names",
    "get_checker", "register", "run_all",
    "BufferRaceChecker", "MsgLengthChecker", "BufferMgmtChecker",
    "LaneChecker", "ExecRestrictChecker", "NoFloatChecker",
    "AllocFailChecker", "DirectoryChecker", "SendWaitChecker",
    "TableAuditChecker",
    "metal_sources",
]
