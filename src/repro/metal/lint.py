"""A checker-of-checkers: static lint for metal state machines.

The paper's §5 observation — "the main danger in writing extensions is
that they can be wrong" — applies to our own checkers too.  This module
replays metal's *semantics* (first declared state starts, ``all`` rules
are tried everywhere, the first matching rule wins, actions may pick
any target) over a :class:`~repro.metal.sm.StateMachine` and reports
three classes of authoring bugs:

``undeclared-target``
    A rule transitions to a state that has no rules anywhere in the
    machine — usually a typo'd state name.  The machine would silently
    enter a state where only ``all`` rules fire.

``unreachable-state``
    A declared state no transition can ever enter.  Its rules are dead
    weight (or the transition meant to reach them is missing).
    Machines with a per-function ``initial_state_fn`` skip this rule:
    any state may be an entry point.  Rules carrying an action are
    conservatively assumed able to reach every state, since an action's
    return value overrides the static target at run time.

``dead-rule``
    A pattern that can never fire because an earlier-tried pattern in
    the same state subsumes it (metal stops at the first match; ``all``
    rules are tried before the state's own).  Subsumption is decided by
    unifying the earlier pattern against the later pattern's template —
    wildcards absorb anything, concrete syntax must agree — so it is
    structural and has no false positives from type information.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sm import ALL, STOP, StateMachine

__all__ = ["LintFinding", "lint_machine", "lint_source"]


@dataclass(frozen=True)
class LintFinding:
    """One authoring problem in a state machine."""

    machine: str
    kind: str       # undeclared-target | unreachable-state | dead-rule
    subject: str    # the state or pattern at fault
    message: str

    def __str__(self) -> str:
        return f"{self.machine}: {self.kind}: {self.message}"


def _declared_states(sm: StateMachine) -> list[str]:
    return list(sm._state_order)


def _undeclared_targets(sm: StateMachine) -> list[LintFinding]:
    findings: list[LintFinding] = []
    seen: set[tuple[str, str]] = set()
    for state_name in _declared_states(sm):
        for rule in sm.states[state_name].rules:
            target = rule.target
            if target in (None, STOP) or target in sm.states:
                continue
            if (state_name, target) in seen:
                continue
            seen.add((state_name, target))
            findings.append(LintFinding(
                sm.name, "undeclared-target", target,
                f"state {state_name!r} transitions to undeclared state "
                f"{target!r}"))
    return findings


def _reachable_states(sm: StateMachine) -> set[str]:
    """States the machine can enter, under metal's execution rules."""
    reached = {sm.start_state}
    if ALL in sm.states:
        reached.add(ALL)
    changed = True
    while changed:
        changed = False
        for state_name in tuple(reached):
            for rule in sm.rules_for(state_name):
                if (rule.action is not None
                        and getattr(rule.action, "overrides_target", True)):
                    # The action's return value can name any state.
                    # Parsed err()/warn() actions declare that they
                    # never do (``overrides_target = False``).
                    extra = set(sm.states) - reached
                    if extra:
                        reached |= extra
                        changed = True
                    continue
                target = rule.target
                if target in sm.states and target not in reached:
                    reached.add(target)
                    changed = True
    return reached


def _unreachable_states(sm: StateMachine) -> list[LintFinding]:
    if sm.initial_state_fn is not None:
        # Per-function initial states: any state may be an entry point.
        return []
    reached = _reachable_states(sm)
    findings: list[LintFinding] = []
    for state_name in _declared_states(sm):
        if state_name == ALL or state_name in reached:
            continue
        findings.append(LintFinding(
            sm.name, "unreachable-state", state_name,
            f"state {state_name!r} is declared but no transition "
            f"reaches it"))
    return findings


def _subsumes(earlier, later) -> bool:
    """Does ``earlier`` match everything ``later`` matches?

    Unify the earlier pattern against the later pattern's *template*:
    the earlier pattern's wildcards absorb the later one's wildcards
    (they are plain identifiers in the template), while any concrete
    syntax must agree exactly.  Sound for shadowing: if this unification
    succeeds, any AST the later pattern accepts is accepted by the
    earlier one first.
    """
    try:
        return earlier.match(later.template) is not None
    except Exception:
        return False


def _shadowed_in(patterns, prelude, sm, state_name) -> list[LintFinding]:
    """Findings for ``patterns`` tried after ``prelude`` in ``state_name``."""
    findings: list[LintFinding] = []
    tried = list(prelude)
    for pattern in patterns:
        shadow = next((q for q in tried if _subsumes(q, pattern)), None)
        if shadow is not None:
            findings.append(LintFinding(
                sm.name, "dead-rule", pattern.text,
                f"pattern {pattern.text!r} in state {state_name!r} can "
                f"never fire: shadowed by earlier pattern "
                f"{shadow.text!r}"))
        tried.append(pattern)
    return findings


def _dead_rules(sm: StateMachine) -> list[LintFinding]:
    all_state = sm.states.get(ALL)
    all_patterns = ([p for rule in all_state.rules for p in rule.patterns]
                    if all_state is not None else [])
    # ``all``-internal shadowing is reported once, against state 'all';
    # each concrete state's own patterns are then checked against the
    # full try order (``all`` rules first, then its own).
    findings = _shadowed_in(all_patterns, [], sm, ALL) if all_patterns else []
    for state_name in _declared_states(sm):
        if state_name == ALL:
            continue
        own = [p for rule in sm.states[state_name].rules
               for p in rule.patterns]
        findings.extend(_shadowed_in(own, all_patterns, sm, state_name))
    return findings


def lint_machine(sm: StateMachine) -> list[LintFinding]:
    """All lint findings for one machine, deterministically ordered."""
    findings = (_undeclared_targets(sm) + _unreachable_states(sm)
                + _dead_rules(sm))
    return findings


def lint_source(text: str, filename: str = "<metal>") -> list[LintFinding]:
    """Lint a textual metal program."""
    from .parser import parse_metal
    return lint_machine(parse_metal(text, filename))
