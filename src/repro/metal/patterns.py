"""Metal patterns: C syntax with wildcard metavariables, unified against ASTs.

A pattern is written in the base language (C), which is what made metal
patterns "powerful yet easy to use, since they closely mirror the source
constructs they are searching for" (paper §3.2).  Identifiers that were
declared as wildcards — ``decl { scalar } addr, buf;`` — match any
expression satisfying the declared type class; all other constructs must
match the target AST structurally.

A wildcard bound twice in one pattern must bind equal subtrees, so the
pattern ``{ x = x; }`` with wildcard ``x`` matches ``a = a`` but not
``a = b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PatternError
from ..lang import ast, ctypes
from ..lang.parser import parse_expression, parse_statement

# Type-class constraints a wildcard can declare.  ``accepts`` receives the
# candidate node's resolved ctype (possibly Unknown when sema could not
# type it) and must be permissive about Unknown, since checkers run over
# code referencing symbols from headers we never see.
_CONSTRAINTS = {
    "any": lambda t: True,
    "expr": lambda t: True,
    "scalar": lambda t: isinstance(t, ctypes.Unknown) or t.is_scalar,
    "int": lambda t: isinstance(t, (ctypes.Unknown, ctypes.Integer)),
    "unsigned": lambda t: isinstance(t, (ctypes.Unknown, ctypes.Integer)),
    "float": lambda t: isinstance(t, ctypes.Unknown) or t.is_floating,
    "pointer": lambda t: isinstance(t, (ctypes.Unknown, ctypes.Pointer, ctypes.Array)),
}


@dataclass(frozen=True)
class MetaVar:
    """A declared wildcard variable."""

    name: str
    constraint: str = "any"

    def __post_init__(self):
        if self.constraint not in _CONSTRAINTS:
            raise PatternError(
                f"unknown wildcard constraint {self.constraint!r} for {self.name!r}"
            )

    def accepts(self, node: ast.Node) -> bool:
        if not isinstance(node, ast.Expr):
            return False
        ctype = getattr(node, "ctype", None)
        if ctype is None:
            ctype = ctypes.UNKNOWN
        return _CONSTRAINTS[self.constraint](ctype)


def _equal_trees(a: ast.Node, b: ast.Node) -> bool:
    """Structural equality ignoring source locations (dataclass eq)."""
    return a == b


class Pattern:
    """One compiled pattern: an AST template plus its wildcard set."""

    def __init__(self, template: ast.Node, metavars: dict[str, MetaVar],
                 text: str = ""):
        self.template = template
        self.metavars = metavars
        self.text = text or "<pattern>"

    def __repr__(self) -> str:
        return f"Pattern({self.text!r})"

    # -- matching ----------------------------------------------------------

    def match(self, node: ast.Node) -> Optional[dict[str, ast.Node]]:
        """Unify this pattern against ``node`` itself (not its subtrees)."""
        bindings: dict[str, ast.Node] = {}
        if self._unify(self.template, node, bindings):
            return bindings
        return None

    def search(self, event: ast.Node):
        """Yield ``(node, bindings)`` for every subtree of ``event`` that matches."""
        for node in event.walk():
            bindings = self.match(node)
            if bindings is not None:
                yield node, bindings

    def matches_anywhere(self, event: ast.Node) -> bool:
        for _ in self.search(event):
            return True
        return False

    # -- unification -------------------------------------------------------

    def _unify(self, pattern: ast.Node, node: ast.Node,
               bindings: dict[str, ast.Node]) -> bool:
        # Wildcard?
        if isinstance(pattern, ast.Ident) and pattern.name in self.metavars:
            var = self.metavars[pattern.name]
            if not var.accepts(node):
                return False
            bound = bindings.get(pattern.name)
            if bound is not None:
                return _equal_trees(bound, node)
            bindings[pattern.name] = node
            return True

        if type(pattern) is not type(node):
            return False

        if isinstance(pattern, ast.Ident):
            return pattern.name == node.name
        if isinstance(pattern, ast.IntLit):
            return pattern.value == node.value
        if isinstance(pattern, (ast.FloatLit, ast.CharLit, ast.StringLit)):
            return pattern.text == node.text
        if isinstance(pattern, ast.Call):
            if len(pattern.args) != len(node.args):
                return False
            if not self._unify(pattern.func, node.func, bindings):
                return False
            return all(
                self._unify(p, n, bindings)
                for p, n in zip(pattern.args, node.args)
            )
        if isinstance(pattern, ast.BinaryOp):
            return (
                pattern.op == node.op
                and self._unify(pattern.left, node.left, bindings)
                and self._unify(pattern.right, node.right, bindings)
            )
        if isinstance(pattern, ast.UnaryOp):
            return pattern.op == node.op and self._unify(
                pattern.operand, node.operand, bindings
            )
        if isinstance(pattern, ast.PostfixOp):
            return pattern.op == node.op and self._unify(
                pattern.operand, node.operand, bindings
            )
        if isinstance(pattern, ast.Assign):
            return (
                pattern.op == node.op
                and self._unify(pattern.target, node.target, bindings)
                and self._unify(pattern.value, node.value, bindings)
            )
        if isinstance(pattern, ast.Ternary):
            return (
                self._unify(pattern.cond, node.cond, bindings)
                and self._unify(pattern.then, node.then, bindings)
                and self._unify(pattern.otherwise, node.otherwise, bindings)
            )
        if isinstance(pattern, ast.Member):
            return (
                pattern.name == node.name
                and pattern.arrow == node.arrow
                and self._unify(pattern.base, node.base, bindings)
            )
        if isinstance(pattern, ast.Index):
            return self._unify(pattern.base, node.base, bindings) and self._unify(
                pattern.index, node.index, bindings
            )
        if isinstance(pattern, ast.Cast):
            return self._unify(pattern.operand, node.operand, bindings)
        if isinstance(pattern, ast.Comma):
            if len(pattern.parts) != len(node.parts):
                return False
            return all(
                self._unify(p, n, bindings)
                for p, n in zip(pattern.parts, node.parts)
            )
        if isinstance(pattern, ast.Return):
            if pattern.value is None or node.value is None:
                return pattern.value is None and node.value is None
            return self._unify(pattern.value, node.value, bindings)
        if isinstance(pattern, ast.VarDecl):
            # Declaration patterns: ``{ float x; }`` matches any variable
            # declaration with that type; a wildcard name binds the
            # declared identifier.
            if pattern.type_name.specifiers != node.type_name.specifiers:
                return False
            if pattern.type_name.pointer_depth != node.type_name.pointer_depth:
                return False
            if pattern.name in self.metavars:
                bound = bindings.get(pattern.name)
                name_node = ast.Ident(name=node.name, location=node.location)
                if bound is not None:
                    return _equal_trees(bound, name_node)
                bindings[pattern.name] = name_node
                return True
            return pattern.name == node.name
        # Fallback: compare remaining node kinds structurally.
        return pattern == node


def compile_pattern(text: str, metavars: Optional[dict[str, MetaVar]] = None,
                    typedefs: Optional[set[str]] = None) -> Pattern:
    """Compile pattern ``text`` (C expression or statement) into a Pattern.

    Statement-form patterns like ``WAIT_FOR_DB_FULL(addr);`` are unwrapped
    to their expression, since matching happens at expression granularity.
    ``return`` patterns stay as Return nodes so checkers can match exits.
    """
    metavars = metavars or {}
    stripped = text.strip()
    if not stripped:
        raise PatternError("empty pattern")
    template: ast.Node
    first_word = stripped.split("(")[0].split()[0] if stripped else ""
    is_decl = first_word in (
        "void char short int long float double signed unsigned "
        "struct union enum const volatile".split()
    )
    if is_decl:
        stmt = parse_statement(
            stripped if stripped.endswith(";") else stripped + ";",
            typedefs=typedefs,
        )
        if not isinstance(stmt, ast.DeclStmt) or len(stmt.decls) != 1:
            raise PatternError(
                f"declaration pattern must declare one variable: {text!r}"
            )
        return Pattern(stmt.decls[0], metavars, text=stripped)
    if stripped.startswith("return"):
        template = parse_statement(
            stripped if stripped.endswith(";") else stripped + ";",
            typedefs=typedefs,
        )
    else:
        expr_text = stripped[:-1].strip() if stripped.endswith(";") else stripped
        try:
            template = parse_expression(expr_text, typedefs=typedefs)
        except Exception as exc:
            raise PatternError(f"cannot parse pattern {text!r}: {exc}") from exc
    return Pattern(template, metavars, text=stripped)
