"""The metal language: patterns, state machines, and the textual parser."""

from .lint import LintFinding, lint_machine, lint_source
from .parser import MetalParser, parse_metal
from .patterns import MetaVar, Pattern, compile_pattern
from .runtime import MatchContext, Report, ReportSink
from .sm import ALL, STOP, Action, Rule, State, StateMachine, StepResult

__all__ = [
    "MetalParser", "parse_metal",
    "MetaVar", "Pattern", "compile_pattern",
    "MatchContext", "Report", "ReportSink",
    "ALL", "STOP", "Action", "Rule", "State", "StateMachine", "StepResult",
    "LintFinding", "lint_machine", "lint_source",
]
