"""Metal runtime objects: match bindings, reports, and the action context.

When a rule's pattern matches an AST node, the engine builds a
:class:`MatchContext` and invokes the rule's action with it.  Actions call
``ctx.err(...)`` to emit a :class:`Report` — the analog of metal's
``err()`` escape — and can read the matched node, the bindings of the
pattern's wildcard variables, and the enclosing function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..lang.source import Location, unknown_location
from ..lang.unparse import unparse_expr


@dataclass(frozen=True)
class Report:
    """One diagnostic produced by a checker."""

    checker: str
    message: str
    location: Location
    function: str = ""
    severity: str = "error"
    # Inter-procedural checkers attach a call-path backtrace.
    backtrace: tuple = ()

    def __str__(self) -> str:
        text = f"{self.location}: [{self.checker}] {self.message}"
        if self.function:
            text += f" (in {self.function})"
        for frame in self.backtrace:
            text += f"\n    called from {frame}"
        return text


class ReportSink:
    """Collects reports, de-duplicating repeats of the same diagnostic.

    The path-sensitive engine can reach the same program point many times
    in the same SM state via different paths; a diagnostic is identified
    by (checker, message, location) so each distinct problem is reported
    once, the way xg++ presented its output.

    A sink also carries the run's resilience state: quarantined
    (checker, function) pairs (crashes isolated by the engine's
    ``keep_going`` mode) and a ``degraded`` flag set when an analysis
    budget ran out before exploration finished — partial results are
    still results, but they say so.
    """

    def __init__(self) -> None:
        self._reports: list[Report] = []
        self._seen: set[tuple] = set()
        #: :class:`repro.mc.resilience.Quarantine` records, deduplicated
        #: on (checker, function).
        self.quarantines: list = []
        self._quarantined: set[tuple] = set()
        #: True when any exploration stopped early (budget, quarantine).
        self.degraded: bool = False
        #: Human-readable notes on what was cut short and why.
        self.degradation_notes: list[str] = []
        #: Path provenance per report key (checker, message, location):
        #: the interleaved source-line/state-transition trail that first
        #: reached the diagnostic (see :mod:`repro.obs.provenance`).
        self.provenance: dict[tuple, list] = {}
        #: Engine hook, invoked with each *new* (non-duplicate) report —
        #: this is how the path-sensitive engine attaches provenance at
        #: the moment a diagnostic first fires.
        self.on_new_report = None
        #: Engine hook consulted *before* a report is recorded.  Returns
        #: a reason string to suppress it (e.g. ``"opaque"`` when the
        #: path crossed a tolerant-frontend opaque region) or None to
        #: let it through.  Suppressed reports land in ``suppressed``
        #: with ``suppressed_by=<reason>`` provenance instead.
        self.report_gate = None
        #: (report, reason) pairs held back by ``report_gate``,
        #: deduplicated like ordinary reports.
        self.suppressed: list[tuple[Report, str]] = []
        self._suppressed_seen: set[tuple] = set()

    def add(self, report: Report) -> bool:
        key = (report.checker, report.message, report.location)
        if self.report_gate is not None:
            reason = self.report_gate(report)
            if reason is not None:
                if key not in self._suppressed_seen:
                    self._suppressed_seen.add(key)
                    self.suppressed.append((report, reason))
                    self.provenance.setdefault(
                        key, [{"kind": "suppressed", "suppressed_by": reason}])
                return False
        if key in self._seen:
            return False
        self._seen.add(key)
        if key in self._suppressed_seen:
            # A clean path reached a diagnostic earlier held back on an
            # opaque path: the report stands, the suppression does not.
            self._suppressed_seen.discard(key)
            self.suppressed = [
                (r, why) for r, why in self.suppressed
                if (r.checker, r.message, r.location) != key
            ]
            self.provenance.pop(key, None)
        self._reports.append(report)
        if self.on_new_report is not None:
            self.on_new_report(report)
        return True

    def add_quarantine(self, quarantine) -> bool:
        """Record a quarantined (checker, function) pair, once."""
        key = (quarantine.checker, quarantine.function)
        if key in self._quarantined:
            return False
        self._quarantined.add(key)
        self.quarantines.append(quarantine)
        self.degraded = True
        return True

    def drop_quarantine(self, quarantine) -> None:
        """Forget a quarantine (its pair was successfully re-analyzed)."""
        key = (quarantine.checker, quarantine.function)
        self._quarantined.discard(key)
        self.quarantines = [
            q for q in self.quarantines
            if (q.checker, q.function) != key
        ]

    @property
    def reports(self) -> list[Report]:
        return list(self._reports)

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self):
        return iter(self._reports)


class MatchContext:
    """What an action sees when its rule fires.

    ``facts`` is the path-feasibility window
    (:class:`repro.mc.feasibility.FactsView`) when the engine runs with
    pruning on, ``None`` otherwise — actions must treat it as optional.
    It lets a checker ask whether a condition is already known
    true/false on the path the rule fired down.
    """

    def __init__(
        self,
        checker: str,
        node: ast.Node,
        bindings: dict[str, ast.Node],
        function: Optional[ast.FunctionDef],
        sink: ReportSink,
        state: str = "",
        facts=None,
    ):
        self.checker = checker
        self.node = node
        self.bindings = bindings
        self.function = function
        self.sink = sink
        self.state = state
        self.facts = facts

    @property
    def location(self) -> Location:
        return self.node.location if self.node is not None else unknown_location()

    @property
    def function_name(self) -> str:
        return self.function.name if self.function is not None else ""

    def err(self, message: str, severity: str = "error") -> None:
        """Emit a diagnostic at the matched node (metal's ``err()``)."""
        self.sink.add(
            Report(
                checker=self.checker,
                message=self._expand(message),
                location=self.location,
                function=self.function_name,
                severity=severity,
            )
        )

    def warn(self, message: str) -> None:
        self.err(message, severity="warning")

    def binding_text(self, name: str) -> str:
        """Render a bound wildcard variable back to C text."""
        node = self.bindings.get(name)
        if node is None:
            return f"<{name}?>"
        if isinstance(node, ast.Expr):
            return unparse_expr(node)
        return node.kind

    def _expand(self, message: str) -> str:
        """Expand ``%name`` references to bound variables in messages."""
        if "%" not in message:
            return message
        out = message
        for name in self.bindings:
            out = out.replace(f"%{name}", self.binding_text(name))
        return out
