"""State machines: the core abstraction of the metal language.

A :class:`StateMachine` has named states, each with an ordered list of
:class:`Rule` objects.  A rule carries one or more :class:`Pattern`
alternatives, an optional target state, and an optional action.  The
``all`` state is special — its rules are implicitly tried in every state
(paper §5) — and the target ``stop`` halts checking of the current path
(paper §4).

Machines can be built three ways: programmatically through this API, by
parsing textual metal (:mod:`repro.metal.parser`), or subclassed by the
checkers in :mod:`repro.checkers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import MetalError
from ..lang import ast
from .patterns import MetaVar, Pattern, compile_pattern
from .runtime import MatchContext

#: Special transition target: stop checking the current path.
STOP = "stop"

#: Name of the special always-active state.
ALL = "all"

Action = Callable[[MatchContext], Optional[str]]


@dataclass
class Rule:
    """``pattern [| pattern...] ==> target { action }``.

    ``target`` may be a state name, :data:`STOP`, or None (stay in the
    current state).  ``action`` may return a state name to override the
    static target — this is how Python-API checkers implement
    data-dependent transitions (e.g. routines whose return value says
    whether a buffer was freed, paper §6).
    """

    patterns: list[Pattern]
    target: Optional[str] = None
    action: Optional[Action] = None
    name: str = ""

    def try_match(self, node: ast.Node) -> Optional[tuple[Pattern, dict]]:
        for pattern in self.patterns:
            bindings = pattern.match(node)
            if bindings is not None:
                return pattern, bindings
        return None


@dataclass
class State:
    name: str
    rules: list[Rule] = field(default_factory=list)


@dataclass
class StepResult:
    """Outcome of feeding one AST node to the machine."""

    state: str
    fired: Optional[Rule] = None
    stopped: bool = False


class StateMachine:
    """An executable metal state machine."""

    def __init__(self, name: str):
        self.name = name
        self.metavars: dict[str, MetaVar] = {}
        self.named_patterns: dict[str, list[Pattern]] = {}
        self.states: dict[str, State] = {}
        self._state_order: list[str] = []
        # Hook: choose the initial state per function (paper §6 starts
        # hardware handlers in "has buffer", others in "has no buffer").
        self.initial_state_fn: Optional[Callable[[ast.FunctionDef], Optional[str]]] = None
        # Hook: called when a path reaches the function exit.
        self.path_end_action: Optional[Callable[[str, MatchContext], None]] = None
        # Hook: edge-sensitive transition.  Called as
        # ``branch_fn(state, condition_node, edge_label)`` when control
        # leaves a block whose last event was a branch condition; may
        # return a state for that edge (None keeps ``state``).  This is
        # how the §6 refinement models routines that "returned a 0 or 1
        # depending on whether or not they freed a buffer".
        self.branch_fn: Optional[
            Callable[[str, ast.Node, Optional[str]], Optional[str]]
        ] = None

    # -- construction ------------------------------------------------------

    def decl(self, constraint: str, *names: str) -> None:
        """Declare wildcard variables: ``decl { scalar } addr, buf;``."""
        for name in names:
            self.metavars[name] = MetaVar(name, constraint)

    def pattern(self, text: str) -> Pattern:
        """Compile a pattern using this machine's wildcard declarations."""
        return compile_pattern(text, self.metavars)

    def define_pattern(self, name: str, *texts: str) -> None:
        """Define a named pattern alternation: ``pat send_data = {...} | {...};``"""
        self.named_patterns[name] = [self.pattern(t) for t in texts]

    def state(self, name: str) -> State:
        if name not in self.states:
            self.states[name] = State(name)
            self._state_order.append(name)
        return self.states[name]

    def add_rule(
        self,
        state: str,
        patterns,
        target: Optional[str] = None,
        action: Optional[Action] = None,
        name: str = "",
    ) -> Rule:
        """Attach a rule to ``state``.

        ``patterns`` may be pattern text, a :class:`Pattern`, a named
        pattern reference, or a list mixing those.
        """
        rule = Rule(patterns=self._resolve_patterns(patterns), target=target,
                    action=action, name=name)
        self.state(state).rules.append(rule)
        return rule

    def _resolve_patterns(self, patterns) -> list[Pattern]:
        if not isinstance(patterns, (list, tuple)):
            patterns = [patterns]
        resolved: list[Pattern] = []
        for item in patterns:
            if isinstance(item, Pattern):
                resolved.append(item)
            elif isinstance(item, str):
                if item in self.named_patterns:
                    resolved.extend(self.named_patterns[item])
                else:
                    resolved.append(self.pattern(item))
            else:
                raise MetalError(f"cannot use {item!r} as a pattern")
        if not resolved:
            raise MetalError("rule needs at least one pattern")
        return resolved

    # -- execution ---------------------------------------------------------

    @property
    def start_state(self) -> str:
        """The first declared state (metal "begins in the first state").

        Figure 3 of the paper deliberately starts in ``all`` — "the
        special state all that does not warn about any message sends" —
        so ``all`` counts if declared first.
        """
        if not self._state_order:
            raise MetalError(f"state machine {self.name!r} declares no states")
        return self._state_order[0]

    def initial_state(self, function: Optional[ast.FunctionDef]) -> Optional[str]:
        """Initial state for ``function``; None means "skip this function"."""
        if self.initial_state_fn is not None and function is not None:
            return self.initial_state_fn(function)
        return self.start_state

    def rules_for(self, state: str) -> list[Rule]:
        """Rules tried in ``state``: the ``all`` state's first, then its own."""
        rules: list[Rule] = []
        all_state = self.states.get(ALL)
        if all_state is not None:
            rules.extend(all_state.rules)
        own = self.states.get(state)
        if own is not None and state != ALL:
            rules.extend(own.rules)
        return rules

    def step(self, state: str, node: ast.Node, ctx_factory) -> StepResult:
        """Feed one AST node to the machine in ``state``.

        ``ctx_factory(node, bindings, state)`` builds the
        :class:`MatchContext` handed to actions.  The first matching rule
        fires; its action may override the transition target.
        """
        for rule in self.rules_for(state):
            matched = rule.try_match(node)
            if matched is None:
                continue
            _, bindings = matched
            target = rule.target
            if rule.action is not None:
                ctx = ctx_factory(node, bindings, state)
                override = rule.action(ctx)
                if override is not None:
                    target = override
            if target == STOP:
                return StepResult(state=state, fired=rule, stopped=True)
            return StepResult(state=target if target is not None else state,
                              fired=rule)
        return StepResult(state=state)

    def __repr__(self) -> str:
        return f"<StateMachine {self.name!r} states={self._state_order}>"
