"""Parser for textual metal — the checker language of the paper.

The grammar covers what Figures 2 and 3 of the paper use (both parse and
run verbatim through this module):

.. code-block:: none

    file      := preamble? machine
    preamble  := '{' ... '}'                      -- e.g. { #include "flash-includes.h" }
    machine   := 'sm' IDENT '{' item* '}'
    item      := decl | patdef | staterules
    decl      := 'decl' '{' constraint '}' IDENT (',' IDENT)* ';'
    patdef    := 'pat' IDENT '=' patgroup ('|' patgroup)* ';'
    staterules:= IDENT ':' rule ('|' rule)* ';'
    rule      := patatom ('|' patatom)* '==>' target
    patatom   := patgroup | IDENT                 -- named pattern reference
    patgroup  := '{' C-expression-or-statement '}'
    target    := IDENT action? | action           -- IDENT may be a state or 'stop'

Actions are restricted to sequences of ``err("...")`` / ``warn("...")``
calls — the only escapes the paper's checkers use.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MetalError
from ..lang.lexer import Token, TokenKind, tokenize
from .runtime import MatchContext
from .sm import StateMachine


class _TokenCursor:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def at_eof(self) -> bool:
        return self.tok.kind is TokenKind.EOF

    def expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise MetalError(f"expected {text!r}, found {str(self.tok)!r}",
                             self.tok.location)
        return self.advance()

    def expect_word(self, text: str) -> Token:
        tok = self.tok
        if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD) or tok.text != text:
            raise MetalError(f"expected {text!r}, found {str(tok)!r}", tok.location)
        return self.advance()

    def expect_name(self) -> Token:
        tok = self.tok
        if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise MetalError(f"expected a name, found {str(tok)!r}", tok.location)
        return self.advance()

    def at_arrow(self) -> bool:
        return self.tok.is_punct("==") and self.peek().is_punct(">")

    def eat_arrow(self) -> None:
        self.expect_punct("==")
        self.expect_punct(">")

    def brace_group(self) -> list[Token]:
        """Consume a balanced ``{ ... }`` group, returning the inner tokens."""
        self.expect_punct("{")
        depth = 1
        inner: list[Token] = []
        while True:
            tok = self.tok
            if tok.kind is TokenKind.EOF:
                raise MetalError("unterminated { ... } group", tok.location)
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth == 0:
                    self.advance()
                    return inner
            inner.append(self.advance())


def _tokens_to_text(tokens: list[Token]) -> str:
    """Reassemble token texts into re-parseable source."""
    return " ".join(tok.text for tok in tokens)


def _parse_action(tokens: list[Token], location):
    """Compile an action block into a Python callable.

    Supports what the paper's checkers use: one or more ``err("...")`` /
    ``warn("...")`` calls.
    """
    cursor = _TokenCursor(tokens + [Token(TokenKind.EOF, "", location)])
    calls: list[tuple[str, str]] = []
    while not cursor.at_eof():
        name = cursor.expect_name().text
        if name not in ("err", "warn"):
            raise MetalError(
                f"unsupported action {name!r} (only err/warn are allowed)",
                cursor.tok.location,
            )
        cursor.expect_punct("(")
        msg_tok = cursor.tok
        if msg_tok.kind is not TokenKind.STRING_LIT:
            raise MetalError("err()/warn() needs a string literal",
                             msg_tok.location)
        cursor.advance()
        message = msg_tok.text[1:-1]
        cursor.expect_punct(")")
        if cursor.tok.is_punct(";"):
            cursor.advance()
        calls.append((name, message))
    if not calls:
        raise MetalError("empty action block", location)

    def action(ctx: MatchContext) -> Optional[str]:
        for kind, message in calls:
            if kind == "err":
                ctx.err(message)
            else:
                ctx.warn(message)
        return None

    # err()/warn() actions never pick a transition target; the lint
    # reachability pass relies on this to avoid treating every textual
    # rule as a potential jump to any state.
    action.overrides_target = False
    return action


class MetalParser:
    """Parses one metal program into a :class:`StateMachine`."""

    def __init__(self, text: str, filename: str = "<metal>"):
        self.cursor = _TokenCursor(tokenize(text, filename))

    def parse(self) -> StateMachine:
        cursor = self.cursor
        # Optional preamble block (e.g. ``{ #include "flash-includes.h" }``;
        # preprocessor lines vanish in the lexer, so it is usually empty).
        if cursor.tok.is_punct("{"):
            cursor.brace_group()
        cursor.expect_word("sm")
        name = cursor.expect_name().text
        sm = StateMachine(name)
        cursor.expect_punct("{")
        while not cursor.tok.is_punct("}"):
            if cursor.at_eof():
                raise MetalError("unterminated sm body", cursor.tok.location)
            self._parse_item(sm)
        cursor.expect_punct("}")
        return sm

    # -- items -------------------------------------------------------------

    def _parse_item(self, sm: StateMachine) -> None:
        cursor = self.cursor
        tok = cursor.tok
        if tok.kind is TokenKind.IDENT and tok.text == "decl":
            self._parse_decl(sm)
        elif tok.kind is TokenKind.IDENT and tok.text == "pat":
            self._parse_patdef(sm)
        elif (tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD)
              and cursor.peek().is_punct(":")):
            self._parse_state(sm)
        else:
            raise MetalError(f"unexpected token {str(tok)!r} in sm body",
                             tok.location)

    def _parse_decl(self, sm: StateMachine) -> None:
        cursor = self.cursor
        cursor.expect_word("decl")
        constraint_tokens = cursor.brace_group()
        if len(constraint_tokens) != 1:
            loc = cursor.tok.location
            raise MetalError("decl constraint must be a single word", loc)
        constraint = constraint_tokens[0].text
        names = [cursor.expect_name().text]
        while cursor.tok.is_punct(","):
            cursor.advance()
            names.append(cursor.expect_name().text)
        cursor.expect_punct(";")
        sm.decl(constraint, *names)

    def _parse_patdef(self, sm: StateMachine) -> None:
        cursor = self.cursor
        cursor.expect_word("pat")
        name = cursor.expect_name().text
        cursor.expect_punct("=")
        texts = [_tokens_to_text(cursor.brace_group())]
        while cursor.tok.is_punct("|"):
            cursor.advance()
            texts.append(_tokens_to_text(cursor.brace_group()))
        cursor.expect_punct(";")
        sm.define_pattern(name, *texts)

    def _parse_state(self, sm: StateMachine) -> None:
        cursor = self.cursor
        state_name = cursor.expect_name().text
        cursor.expect_punct(":")
        sm.state(state_name)  # register even if it ends up with no rules
        while True:
            self._parse_rule(sm, state_name)
            if cursor.tok.is_punct("|"):
                cursor.advance()
                continue
            break
        cursor.expect_punct(";")

    def _parse_rule(self, sm: StateMachine, state_name: str) -> None:
        cursor = self.cursor
        patterns: list = []
        while True:
            if cursor.tok.is_punct("{"):
                group = cursor.brace_group()
                patterns.append(sm.pattern(_tokens_to_text(group)))
            elif cursor.tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
                ref = cursor.advance().text
                if ref not in sm.named_patterns:
                    raise MetalError(f"unknown named pattern {ref!r}",
                                     cursor.tok.location)
                patterns.append(ref)
            else:
                raise MetalError(f"expected a pattern, found {str(cursor.tok)!r}",
                                 cursor.tok.location)
            if cursor.at_arrow():
                break
            if cursor.tok.is_punct("|"):
                # Alternation *within* the rule only if another pattern
                # follows before the arrow; otherwise it separates rules.
                cursor.advance()
                continue
            break
        cursor.eat_arrow()
        target: Optional[str] = None
        action = None
        if cursor.tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            target = cursor.advance().text
        if cursor.tok.is_punct("{"):
            loc = cursor.tok.location
            action = _parse_action(cursor.brace_group(), loc)
        if target is None and action is None:
            raise MetalError("rule needs a target state or an action",
                             cursor.tok.location)
        sm.add_rule(state_name, patterns, target=target, action=action)


def parse_metal(text: str, filename: str = "<metal>") -> StateMachine:
    """Parse a textual metal program into an executable state machine."""
    return MetalParser(text, filename).parse()
