/* Fixed-capacity ring buffer, in the style of driver queue code.
 * Fully inside the repro.lang C subset: parses byte-identically in
 * strict and tolerant modes. */

typedef struct RingBuf {
    int head;
    int tail;
    int capacity;
    int dropped;
    long slots[64];
} RingBuf;

static int rb_count(RingBuf *rb)
{
    int n = rb->head - rb->tail;
    if (n < 0)
        n += rb->capacity;
    return n;
}

int rb_push(RingBuf *rb, long value)
{
    int next = (rb->head + 1) % rb->capacity;
    if (next == rb->tail) {
        rb->dropped++;
        return -1;
    }
    rb->slots[rb->head] = value;
    rb->head = next;
    return 0;
}

int rb_pop(RingBuf *rb, long *out)
{
    if (rb->head == rb->tail)
        return -1;
    *out = rb->slots[rb->tail];
    rb->tail = (rb->tail + 1) % rb->capacity;
    return 0;
}

int rb_drain(RingBuf *rb)
{
    long scratch;
    int drained = 0;
    while (rb_count(rb) > 0) {
        if (rb_pop(rb, &scratch) != 0)
            break;
        drained++;
    }
    return drained;
}
