/* Network-driver-style code with GNU extensions the subset grammar
 * does not know: __attribute__ annotations and an inline asm block.
 * Tolerant mode quarantines those regions and analyses the rest. */

typedef struct pkt {
    int len;
    int csum;
    char payload[1500];
} pkt_t;

/* GNU-ism: attribute on a declaration.  Not in the subset grammar;
 * in tolerant mode this region quarantines instead of failing the
 * whole translation unit. */
struct dma_desc {
    unsigned long addr;
    unsigned short flags;
} __attribute__((packed, aligned(8)));

int csum_ok(pkt_t *p)
{
    int sum = 0;
    int i;
    for (i = 0; i < p->len; i++)
        sum += p->payload[i];
    return sum == p->csum;
}

static void mmio_flush(void)
{
    /* Inline asm is outside the subset: recovered as opaque. */
    asm volatile("mfence" ::: "memory");
}

static int ring_mask(void)
{
    /* GNU statement-expression: the ({ ... }) initializer is outside
     * the subset's expression grammar and recovers as opaque. */
    int mask = ({ int order = 6; (1 << order) - 1; });
    return mask;
}

int drv_rx(pkt_t *p)
{
    if (p->len < 0 || p->len > 1500)
        return -1;
    if (!csum_ok(p))
        return -2;
    mmio_flush();
    return p->len;
}

int drv_stats(pkt_t *p, int *good, int *bad)
{
    int rc = drv_rx(p);
    if (rc >= 0)
        *good = *good + 1;
    else
        *bad = *bad + 1;
    return rc;
}
