/* A ".c" file that drifted into C++ over the years — template
 * helpers and a class between plain C functions.  Tolerant mode
 * quarantines each C++ region by itself; the C survives. */

int plain_before(int x)
{
    return x * 2 + 1;
}

template <typename T>
static T max_of(T a, T b)
{
    return a > b ? a : b;
}

class Tracker {
public:
    Tracker() : count_(0) {}
    void bump() { count_++; }
private:
    int count_;
};

namespace util {
int helper(int v) { return v - 1; }
}

int plain_after(int y)
{
    int z = y;
    if (z < 0)
        z = -z;
    return z;
}
