/* Pre-ANSI (K&R) definitions next to modern ones, the way decades-old
 * trees accrete.  The K&R parameter-declaration style is outside the
 * subset grammar; tolerant mode quarantines those functions and still
 * analyses the ANSI ones. */

int clamp(int v, int lo, int hi)
{
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return v;
}

/* K&R definition: parameters declared between ')' and '{'. */
int legacy_sum(a, b)
int a;
int b;
{
    return a + b;
}

/* K&R with an implicit-int return. */
legacy_scale(x, factor)
int x;
int factor;
{
    return x * factor;
}

int modern_entry(int n)
{
    int acc = 0;
    int i;
    for (i = 0; i < n; i++)
        acc = clamp(acc + i, 0, 1000);
    return acc;
}
