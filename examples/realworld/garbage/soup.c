}}}} )))) ;;;; {{{{
int int int = = = @@@ $$$ ??? ```
"unterminated on purpose
#pragma whatever this is
<<<<<<< HEAD
int maybe(void) { return 0x
=======
float maybe(void) { return 1.0
>>>>>>> other
\x01\x02 not really escapes just text \
'''
struct { { { [ [ ( ( 42 ~~~!!!
