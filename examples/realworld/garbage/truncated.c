/* A file cut off mid-transfer: unterminated comment, unterminated
   string, and a function that stops mid-expression. */

int whole(int a)
{
    return a + 7;
}

int cut_off(int b)
{
    char *msg = "never closed;
    int c = b *
