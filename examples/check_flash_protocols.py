#!/usr/bin/env python3
"""Reproduce the paper's whole evaluation: five FLASH protocols plus
common code, nine checkers, every table printed paper-vs-measured.

This is the Table 1-7 pipeline end to end:

1. generate the protocol categories (sizes and seeded defects match the
   paper's numbers; see DESIGN.md for the substitution argument);
2. run every checker over every protocol;
3. classify each diagnostic against the generator's ground truth;
4. print each table with the paper's value beside ours.

Run:  python examples/check_flash_protocols.py          (~40 s)
"""

import time

from repro.bench import Experiment, render_all


def main() -> None:
    experiment = Experiment()
    start = time.time()
    print("generating five protocols + common code ...")
    protocols = experiment.generate()
    total_loc = sum(gp.loc() for gp in protocols.values())
    print(f"  {len(protocols)} categories, {total_loc} lines of protocol code")

    print("running the full checker suite over every protocol ...")
    experiment.check()
    reports = sum(
        len(result.reports)
        for results in experiment.results.values()
        for result in results.values()
    )
    print(f"  {reports} diagnostics in {time.time() - start:.1f}s\n")

    print(render_all(experiment.all_tables()))

    unmatched = experiment.unmatched_reports()
    print(f"\ndiagnostics outside the ground-truth manifest: {unmatched}")
    table7 = experiment.table7()
    total = table7.row("total")
    print(f"total errors {total['errors']} | false positives "
          f"{total['false_pos']}")


if __name__ == "__main__":
    main()
