#!/usr/bin/env python3
"""Static checking vs. days of simulation: the paper's §6 story, live.

A handler leaks its data buffer on one rare path.  Dynamically the
machine runs fine for hundreds of handler invocations and then
deadlocks — exactly the "low-grade buffer leak that only deadlocks the
system after several days" failure mode.  Statically, the buffer
management checker points at the faulty return immediately.

Run:  python examples/simulate_bug_manifestation.py
"""

from repro.checkers import BufferMgmtChecker
from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.project import HandlerInfo, ProtocolInfo, program_from_source

LEAKY = """
void NIRemotePut(void) {
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if ((addr & 511) == 24) {
        return;                 /* BUG: loses the incoming buffer */
    }
    DB_FREE();
    return;
}
"""

FIXED = LEAKY.replace("        return;                 /* BUG: loses the incoming buffer */",
                      "        DB_FREE();\n        return;")


def simulate(source: str, label: str) -> None:
    prog = program_from_source(source)
    functions = {f.name: f for f in prog.functions()}
    machine = FlashMachine(functions, {1: "NIRemotePut"}, n_buffers=8)
    stats = machine.run(WorkloadSpec(messages=100000,
                                     opcode_weights=((1, 1),)))
    if stats.deadlock:
        print(f"  [{label}] DEADLOCK after {stats.handlers_run} handler "
              f"executions: {stats.deadlock}")
    else:
        print(f"  [{label}] ran {stats.handlers_run} handlers cleanly")


def check(source: str, label: str) -> None:
    info = ProtocolInfo(name="demo", handlers={
        "NIRemotePut": HandlerInfo("NIRemotePut", "hw"),
    })
    result = BufferMgmtChecker().check(program_from_source(source, info))
    if result.reports:
        print(f"  [{label}] static checker says:")
        for report in result.reports:
            print(f"      {report}")
    else:
        print(f"  [{label}] static checker: clean")


def main() -> None:
    print("1. Dynamic simulation of the buggy handler "
          "(the only pre-MC option):")
    simulate(LEAKY, "buggy")
    print("\n2. The same bug through the Section 6 checker "
          "(milliseconds, exact line):")
    check(LEAKY, "buggy")
    print("\n3. After the fix:")
    check(FIXED, "fixed")
    simulate(FIXED, "fixed")


if __name__ == "__main__":
    main()
