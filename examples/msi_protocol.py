#!/usr/bin/env python3
"""A working MSI directory protocol on the FLASH substrate.

The paper's protocols are real cache-coherence engines; this example
shows the reproduction's substrate is expressive enough to host one.  A
simplified home-based MSI protocol is written in the C subset using the
FLASH handler conventions, then:

1. every checker is run over it statically (it is written to be clean);
2. it executes on the FlashLite-lite machine under a random read/write
   workload, and the directory invariant (a line is never both dirty
   and shared) is checked against the simulated directory state.

Run:  python examples/msi_protocol.py
"""

from repro.checkers import run_all
from repro.flash.sim import FlashMachine, WorkloadSpec
from repro.project import HandlerInfo, ProtocolInfo, program_from_source

# Directory entry encoding: bit0 = shared by remote, bit1 = dirty remote.
MSI_SOURCE = """
void MSIHomeGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    unsigned entry;
    addr = HANDLER_GLOBALS(header.nh.addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    entry = HANDLER_GLOBALS(dirEntry);
    if (entry & 2) {
        /* Dirty at a remote owner: NAK the reader; it will retry after
         * the owner writes back. */
        HANDLER_GLOBALS(header.nh.op) = MSG_NAK;
        HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
        NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
        DB_FREE();
        return;
    }
    /* Clean: grant a shared copy. */
    HANDLER_GLOBALS(dirEntry) = entry | 1;
    DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
    HANDLER_GLOBALS(header.nh.op) = MSG_PUT;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(NI_REPLY, F_DATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}

void MSIHomeGetX(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    unsigned entry;
    addr = HANDLER_GLOBALS(header.nh.addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    entry = HANDLER_GLOBALS(dirEntry);
    if (entry & 2) {
        HANDLER_GLOBALS(header.nh.op) = MSG_NAK;
        HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
        NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
        DB_FREE();
        return;
    }
    if (entry & 1) {
        /* Invalidate the sharer before granting exclusive. */
        HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
        NI_SEND(NI_REQUEST, F_NODATA, 1, 0, 1, 0);
    }
    HANDLER_GLOBALS(dirEntry) = 2;
    DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
    HANDLER_GLOBALS(header.nh.op) = MSG_PUTX;
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(NI_REPLY, F_DATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}

void MSIHomeWriteback(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    WAIT_FOR_DB_FULL(addr);
    HANDLER_GLOBALS(dirEntry) = DIR_LOAD(addr);
    HANDLER_GLOBALS(dirEntry) = HANDLER_GLOBALS(dirEntry) & ~2;
    DIR_WRITEBACK(addr, HANDLER_GLOBALS(dirEntry));
    HANDLER_GLOBALS(header.nh.op) = MSG_ACK;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REPLY, F_NODATA, 1, 0, 1, 0);
    DB_FREE();
    return;
}
"""

HANDLERS = {
    "MSIHomeGet": HandlerInfo("MSIHomeGet", "hw",
                              lane_allowance=(1, 1, 1, 1)),
    "MSIHomeGetX": HandlerInfo("MSIHomeGetX", "hw",
                               lane_allowance=(1, 1, 1, 1)),
    "MSIHomeWriteback": HandlerInfo("MSIHomeWriteback", "hw",
                                    lane_allowance=(1, 1, 1, 1)),
}

# Opcodes: 1=GET, 3=GETX, 10=WB (see repro.flash.sim.node.CONSTANTS)
DISPATCH = {1: "MSIHomeGet", 3: "MSIHomeGetX", 10: "MSIHomeWriteback"}


def main() -> None:
    info = ProtocolInfo(name="msi", handlers=HANDLERS)
    program = program_from_source(MSI_SOURCE, info, filename="msi.c")

    print("1. static checking (all nine checkers):")
    total = 0
    for name, result in run_all(program).items():
        total += len(result.reports)
        if result.reports:
            for report in result.reports:
                print("   ", report)
    print(f"   {total} diagnostics - the protocol is clean by construction")
    assert total == 0

    print("\n2. simulating a 3000-message read/write/writeback mix:")
    functions = {f.name: f for f in program.functions()}
    machine = FlashMachine(functions, DISPATCH, nodes=2, n_buffers=16,
                           lane_capacity=8, max_hops=0)
    spec = WorkloadSpec(
        messages=3000,
        opcode_weights=((1, 6), (3, 3), (10, 2)),
        address_space=1 << 10,
        seed=11,
    )
    stats = machine.run(spec)
    assert stats.deadlock is None, stats.deadlock
    print(f"   {stats.handlers_run} handlers, {stats.sends} replies, "
          f"no deadlock, {stats.leaked_buffers} leaked buffers")
    assert stats.clean

    print("\n3. directory invariant (never dirty AND shared):")
    checked = 0
    for node in machine.nodes:
        for addr, entry in node.directory._entries.items():
            checked += 1
            assert entry != 3, f"addr {addr:#x} both dirty and shared"
    print(f"   {checked} directory entries verified")


if __name__ == "__main__":
    main()
