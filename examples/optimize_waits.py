#!/usr/bin/env python3
"""MC as an optimizer: eliminate redundant buffer synchronization.

The paper frames meta-level compilation as a way to "check, transform,
and optimize system-level operations" (§3.1), and FLASH's own convention
— call ``WAIT_FOR_DB_FULL`` as late as possible, only on paths that need
it — exists because synchronization costs parallelism.  This example
runs the redundant-wait eliminator over the generated bitvector
protocol: any wait that *every* path has already performed is removed,
and the §4 buffer-race checker proves before/after equivalence.

Run:  python examples/optimize_waits.py
"""

from repro.checkers import BufferRaceChecker
from repro.flash.codegen import generate_protocol
from repro.lang.unparse import unparse_unit
from repro.mc.transform import RedundantWaitEliminator
from repro.project import Program


LEGACY_HANDLER = """
void PILocalGetLegacy(void) {
    unsigned addr;
    unsigned v;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if (check_early) {
        WAIT_FOR_DB_FULL(addr);
        v = MISCBUS_READ_DB(addr, 0);
    } else {
        WAIT_FOR_DB_FULL(addr);
    }
    /* Legacy belt-and-braces wait: every path above already waited. */
    WAIT_FOR_DB_FULL(addr);
    v = MISCBUS_READ_DB(addr, 4);
    WAIT_FOR_DB_FULL(addr);
    v = MISCBUS_READ_DB(addr, 8);
    DB_FREE();
    return;
}
"""


def optimize_legacy_handler() -> None:
    from repro.lang import annotate, parse
    unit = parse(LEGACY_HANDLER, "legacy.c")
    annotate(unit)
    results = RedundantWaitEliminator().transform_unit(unit)
    removed = sum(len(r.removed) for r in results)
    print("a legacy handler with belt-and-braces synchronization:")
    for result in results:
        for line in result.removed_lines:
            print(f"  removed redundant wait at legacy.c:{line}")
    assert removed == 2
    after = BufferRaceChecker().check(
        Program({"legacy.c": unparse_unit(unit)}))
    assert after.reports == []
    print(f"  {removed} of 4 waits removed; buffer-race checker still clean\n")


def main() -> None:
    optimize_legacy_handler()

    gp = generate_protocol("bitvector")
    program = gp.program()

    before = BufferRaceChecker().check(program)
    print(f"before: {len(before.reports)} buffer-race diagnostics, "
          f"{_wait_count(program)} WAIT_FOR_DB_FULL calls")

    eliminator = RedundantWaitEliminator()
    removed = 0
    new_files = {}
    for filename, unit in program.units.items():
        for result in eliminator.transform_unit(unit):
            removed += len(result.removed)
            for line in result.removed_lines:
                print(f"  removed redundant wait at {filename}:{line}")
        new_files[filename] = unparse_unit(unit)

    optimized = Program(new_files, info=gp.info)
    after = BufferRaceChecker().check(optimized)
    print(f"after:  {len(after.reports)} buffer-race diagnostics, "
          f"{_wait_count(optimized)} WAIT_FOR_DB_FULL calls "
          f"({removed} removed)")
    assert len(after.reports) == len(before.reports), \
        "optimization must not change which reads are synchronized"
    if removed == 0:
        print("  (generated FLASH code already follows the 'wait as late "
              "as possible' convention, so nothing was redundant)")
    print("\nthe checker certifies the optimization: same diagnostics, "
          "no redundant synchronization")


def _wait_count(program: Program) -> int:
    from repro.lang import ast
    count = 0
    for function in program.functions():
        for node in function.walk():
            if (isinstance(node, ast.Call)
                    and node.callee_name == "WAIT_FOR_DB_FULL"):
                count += 1
    return count


if __name__ == "__main__":
    main()
