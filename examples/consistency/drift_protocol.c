/* drift_protocol: a handler file whose hand-maintained metadata has
 * drifted from the code.  The consistency checker pack
 * (src/repro/packs/consistency, loaded with --pack-dir) cross-checks
 * this file against drift.spec and finds the seeded bugs:
 *
 *   - PILocalGet     message listing says LEN_NODATA, code sets LEN_WORD
 *   - NIRemoteGet    has the handler prologue but no table registers it
 *   - NILocalPut     registered (handler table + dispatch) but undefined
 *   - SWHandlerFlush lists the same length twice on one path
 *                    (caught by the pack's len_reassign metal machine)
 */

void PILocalGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    /* the message listing claims this reply carries no data */
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    PI_SEND(F_DATA, 1, 0, 1, 1, 0);
    DB_FREE();
    return;
}

void PIRemoteGet(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
    NI_SEND(NI_REPLY, F_DATA, 1, 1, 1, 0);
    DB_FREE();
    return;
}

void NIRemoteGet(void) {
    /* full handler prologue — but the handler table, message listing,
     * and dispatch config all forgot this one exists */
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(NI_REPLY, F_NODATA, 1, 1, 1, 0);
    DB_FREE();
    return;
}

void SWHandlerFlush(void) {
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    unsigned addr;
    addr = HANDLER_GLOBALS(header.nh.addr);
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    /* same length listed again: a copy-paste residue the len_reassign
     * machine flags as a redundant duplicate */
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    PI_SEND(F_DATA, 1, 0, 1, 1, 0);
    DB_FREE();
    return;
}
