#!/usr/bin/env python3
"""Quickstart: write a metal checker and run it over C code.

This is the paper's core workflow in ~40 lines: express a systems rule
as a small state machine, and let the engine push it down every
execution path of every function.

Run:  python examples/quickstart.py
"""

from repro.lang import annotate, parse
from repro.mc import check_unit, format_reports
from repro.metal import parse_metal

# 1. A rule, stated the way Figure 2 of the paper states it: every read
#    of the data buffer must be preceded by a synchronizing wait.
CHECKER = """
{ #include "flash-includes.h" }
sm wait_for_db {
    decl { scalar } addr, buf;
    start:
      { WAIT_FOR_DB_FULL(addr); } ==> stop
    | { MISCBUS_READ_DB(addr, buf); } ==>
        { err("Buffer not synchronized"); }
    ;
}
"""

# 2. Some protocol-handler code with a bug on one path: when `bypass`
#    is taken, the read happens before the hardware finished the fill.
PROTOCOL_CODE = """
void NILocalGet(void) {
    unsigned addr;
    unsigned value;
    addr = HANDLER_GLOBALS(header.nh.addr);
    if (bypass) {
        value = MISCBUS_READ_DB(addr, 0);   /* racy! */
    } else {
        WAIT_FOR_DB_FULL(addr);
        value = MISCBUS_READ_DB(addr, 0);   /* fine */
    }
    DB_FREE();
}
"""


def main() -> None:
    sm = parse_metal(CHECKER)
    unit = parse(PROTOCOL_CODE, "protocol.c")
    annotate(unit)
    sink = check_unit(sm, unit)
    print(format_reports(sink.reports, heading="wait_for_db results"))
    assert len(sink.reports) == 1, "expected exactly the racy read"
    print("\nThe racy path was found; the synchronized path was not flagged.")


if __name__ == "__main__":
    main()
