#!/usr/bin/env python3
"""Writing your own checker: spinlock discipline in OS-kernel-style code.

The paper argues MC generalizes beyond FLASH ("the restrictions ... are
typical of embedded systems and OS kernels", §12).  This example encodes
three kernel rules with the Python state-machine API:

1. a lock acquired must be released on every path (leaks hang the CPU);
2. a lock must not be acquired twice (self-deadlock);
3. no blocking call (``kmalloc_wait``) while a spinlock is held.

Note how close the code is to the FLASH buffer checker: same engine,
different vocabulary — this is the "meta-level" part of MC.

Run:  python examples/custom_checker_locks.py
"""

from repro.lang import annotate, parse
from repro.mc import check_unit, format_reports
from repro.metal import StateMachine


def make_lock_checker() -> StateMachine:
    sm = StateMachine("spinlock")
    sm.decl("any", "l")
    sm.state("unlocked")
    sm.state("locked")

    sm.add_rule("unlocked", "spin_lock(l)", target="locked")
    sm.add_rule(
        "unlocked", "spin_unlock(l)",
        action=lambda ctx: ctx.err("unlock of a lock that is not held"),
    )
    sm.add_rule("locked", "spin_unlock(l)", target="unlocked")
    sm.add_rule(
        "locked", "spin_lock(l)",
        action=lambda ctx: ctx.err("double acquire: self-deadlock"),
    )
    sm.add_rule(
        "locked", "kmalloc_wait(l)",
        action=lambda ctx: ctx.err("blocking call while holding a spinlock"),
    )

    def at_exit(state, ctx):
        if state == "locked":
            ctx.err("function can return with the lock still held")
    sm.path_end_action = at_exit
    return sm


KERNEL_CODE = """
void irq_ok(void) {
    spin_lock(q_lock);
    enqueue(item);
    spin_unlock(q_lock);
}

void irq_leaks_lock(void) {
    spin_lock(q_lock);
    if (queue_full) {
        return;                 /* BUG: lock still held */
    }
    enqueue(item);
    spin_unlock(q_lock);
}

void sleeps_under_lock(void) {
    spin_lock(q_lock);
    buf = kmalloc_wait(64);     /* BUG: may sleep while spinning */
    spin_unlock(q_lock);
}

void double_acquire(void) {
    spin_lock(a);
    if (rare_case) {
        spin_lock(a);           /* BUG: self-deadlock */
    }
    spin_unlock(a);
}
"""


def main() -> None:
    unit = parse(KERNEL_CODE, "kernel.c")
    annotate(unit)
    sink = check_unit(make_lock_checker(), unit)
    print(format_reports(sink.reports, heading="spinlock checker results"))
    assert len(sink.reports) == 3
    print("\n3 bugs found, clean function untouched - one page of checker.")


if __name__ == "__main__":
    main()
